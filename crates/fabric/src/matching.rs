//! MPI-style tag matching: `(source, tag)` selectors with wildcards and
//! non-overtaking order.
//!
//! Messages between a given pair of ranks with matching tags are delivered
//! in the order they were posted (MPI's non-overtaking guarantee). The
//! fabric used to keep one flat `Vec` per destination and scan it linearly
//! on every match; this module now also hosts the sharded engine that
//! replaced those scans:
//!
//! * `SendQueue` — unexpected sends awaiting a receive. Entries carry a
//!   concrete `(source, tag)` key and are indexed two ways: a
//!   hash-bucketed exact-match index (amortized O(1) for the common
//!   fully-specified receive) and an arrival-ordered *sideline* that
//!   wildcard receives (`ANY_SOURCE`/`ANY_TAG`) scan front-to-back —
//!   exactly the old linear matcher's cost, only paid by wildcards.
//! * `RecvQueue` — posted receives awaiting a send. Exact selectors go
//!   to hash buckets; wildcard selectors go to a dedicated sideline. A
//!   monotone per-queue sequence number stamps every post, and a send
//!   matches whichever candidate (bucket head vs. sideline head) has the
//!   smaller sequence — preserving non-overtaking order across shards.
//!
//! Cancelled/completed entries are *lazily drained*: scans tombstone them
//! in place and pop them when they surface at a queue front, so cleanup
//! is amortized O(1) per entry instead of the old `retain`/`remove(idx)`
//! shifts. Buckets that accumulate many mid-queue tombstones are
//! compacted once the dead outnumber a scan's useful work.

/// Message tag type (an `int` in MPI).
pub type Tag = i32;

/// Wildcard source selector (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag selector (like `MPI_ANY_TAG`).
pub const ANY_TAG: Tag = -2;

/// A receive's matching criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selector {
    /// Required source rank, or [`ANY_SOURCE`].
    pub source: i32,
    /// Required tag, or [`ANY_TAG`].
    pub tag: Tag,
}

impl Selector {
    /// Build a selector; negative values select the corresponding wildcard.
    pub fn new(source: i32, tag: Tag) -> Self {
        Self { source, tag }
    }

    /// Does a message from `source` with `tag` match?
    pub fn matches(&self, source: usize, tag: Tag) -> bool {
        (self.source == ANY_SOURCE || self.source == source as i32)
            && (self.tag == ANY_TAG || self.tag == tag)
    }
}

/// Envelope information returned by probes and completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Total payload bytes.
    pub bytes: usize,
}

// ---------------------------------------------------------------------------
// Sharded matching engine
// ---------------------------------------------------------------------------

use std::collections::VecDeque;

/// Tombstone-compaction trigger: once a single scan has skipped this many
/// dead entries in one queue, the queue is compacted so a pathological
/// head entry cannot pin an ever-growing tail of tombstones.
const COMPACT_SKIP: usize = 16;

/// Clamp a bucket-count knob into range and round up to a power of two.
fn pow2_buckets(n: usize) -> usize {
    n.clamp(1, 1 << 16).next_power_of_two()
}

/// Multiplicative hash of an exact `(source, tag)` key into `mask + 1`
/// buckets (splitmix64-style finalizer; mask is `buckets - 1`).
fn bucket_of(source: usize, tag: Tag, mask: usize) -> usize {
    let mut h = (source as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (tag as u32 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    (h as usize) & mask
}

/// Is `sel` fully specified (no wildcard component)?
fn is_exact(sel: &Selector) -> bool {
    sel.source != ANY_SOURCE && sel.tag != ANY_TAG
}

// --- Unexpected-send queue --------------------------------------------------

struct SendSlot<T> {
    source: usize,
    tag: Tag,
    /// `None` = tombstone: matched, drained, or awaiting lazy removal.
    val: Option<T>,
    /// Index queues (exact bucket + sideline) still holding this slot.
    refs: u8,
}

/// Unexpected sends addressed to one destination rank, indexed for
/// amortized-O(1) exact matching with an ordered wildcard fallback.
pub(crate) struct SendQueue<T> {
    slab: Vec<SendSlot<T>>,
    free: Vec<usize>,
    /// Exact-match index: per-bucket slab indices in arrival order.
    buckets: Vec<VecDeque<usize>>,
    /// Wildcard sideline: every entry in arrival order.
    order: VecDeque<usize>,
    mask: usize,
    /// Live (non-tombstoned) entries, maintained incrementally so
    /// [`Self::counts`] is O(1) — the fabric reads it on every operation
    /// to keep depth gauges current, and a slab rescan there would turn
    /// each post into an O(queue) walk.
    live: usize,
}

/// Pop tombstones and freshly-dead entries off a send-index front.
/// Each slot is popped at most once per queue over its lifetime, so the
/// cleanup is amortized O(1) per entry.
fn send_clean_front<T>(
    q: &mut VecDeque<usize>,
    slab: &mut [SendSlot<T>],
    free: &mut Vec<usize>,
    dead: &impl Fn(&T) -> bool,
    drained: &mut u64,
) {
    while let Some(&idx) = q.front() {
        let s = &mut slab[idx];
        match &s.val {
            None => {}
            Some(v) if dead(v) => {
                s.val = None;
                *drained += 1;
            }
            Some(_) => break,
        }
        q.pop_front();
        s.refs -= 1;
        if s.refs == 0 {
            free.push(idx);
        }
    }
}

/// Pop leading tombstones only (no dead-predicate), releasing freed slots.
/// Used on the counterpart index after a take so a slot removed via one
/// index does not linger as a tombstone at the front of the other.
fn send_pop_tombstones<T>(
    q: &mut VecDeque<usize>,
    slab: &mut [SendSlot<T>],
    free: &mut Vec<usize>,
) {
    while let Some(&idx) = q.front() {
        if slab[idx].val.is_some() {
            break;
        }
        q.pop_front();
        let s = &mut slab[idx];
        s.refs -= 1;
        if s.refs == 0 {
            free.push(idx);
        }
    }
}

/// Drop every tombstone from a send index, releasing freed slots.
fn send_compact<T>(q: &mut VecDeque<usize>, slab: &mut [SendSlot<T>], free: &mut Vec<usize>) {
    q.retain(|&idx| {
        let s = &mut slab[idx];
        if s.val.is_some() {
            true
        } else {
            s.refs -= 1;
            if s.refs == 0 {
                free.push(idx);
            }
            false
        }
    });
}

impl<T> SendQueue<T> {
    pub(crate) fn new(buckets: usize) -> Self {
        let n = pow2_buckets(buckets);
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            order: VecDeque::new(),
            mask: n - 1,
            live: 0,
        }
    }

    /// Append an arrived send with its concrete envelope key.
    pub(crate) fn push(&mut self, source: usize, tag: Tag, val: T) {
        self.live += 1;
        let slot = SendSlot {
            source,
            tag,
            val: Some(val),
            refs: 2,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = slot;
                i
            }
            None => {
                self.slab.push(slot);
                self.slab.len() - 1
            }
        };
        self.buckets[bucket_of(source, tag, self.mask)].push_back(idx);
        self.order.push_back(idx);
    }

    /// Remove and return the earliest live entry matching `sel`, together
    /// with `true` when the wildcard sideline (not the exact-bucket path)
    /// found it. Dead entries encountered on the way are tombstoned and
    /// counted into `drained`.
    pub(crate) fn take(
        &mut self,
        sel: Selector,
        dead: impl Fn(&T) -> bool,
        drained: &mut u64,
    ) -> Option<(T, bool)> {
        let wildcard = !is_exact(&sel);
        let d0 = *drained;
        let found = self.scan(sel, &dead, drained);
        self.live -= (*drained - d0) as usize;
        let found = found?;
        self.live -= 1;
        Some((self.remove_at(found, wildcard), wildcard))
    }

    /// Envelope view of the earliest live entry matching `sel`, without
    /// removing it (probe semantics). Dead entries are still drained.
    pub(crate) fn peek(
        &mut self,
        sel: Selector,
        dead: impl Fn(&T) -> bool,
        drained: &mut u64,
    ) -> Option<(usize, Tag, &T)> {
        let d0 = *drained;
        let found = self.scan(sel, &dead, drained);
        self.live -= (*drained - d0) as usize;
        let (_, idx) = found?;
        let s = &self.slab[idx];
        s.val.as_ref().map(|v| (s.source, s.tag, v))
    }

    /// Find the earliest live match: exact selectors walk one hash bucket,
    /// wildcards walk the arrival-ordered sideline. Returns the in-queue
    /// position and slab index.
    fn scan(
        &mut self,
        sel: Selector,
        dead: &impl Fn(&T) -> bool,
        drained: &mut u64,
    ) -> Option<(usize, usize)> {
        let exact = is_exact(&sel);
        let b = if exact {
            bucket_of(sel.source as usize, sel.tag, self.mask)
        } else {
            0
        };
        let Self {
            slab,
            free,
            buckets,
            order,
            ..
        } = self;
        let q = if exact { &mut buckets[b] } else { order };
        send_clean_front(q, slab, free, dead, drained);
        let mut skipped = 0usize;
        let mut found = None;
        for (pos, &idx) in q.iter().enumerate() {
            let s = &mut slab[idx];
            let Some(v) = &s.val else {
                skipped += 1;
                continue;
            };
            if dead(v) {
                s.val = None;
                *drained += 1;
                skipped += 1;
                continue;
            }
            if sel.matches(s.source, s.tag) {
                found = Some((pos, idx));
                break;
            }
        }
        if skipped >= COMPACT_SKIP {
            send_compact(q, slab, free);
            // Positions shifted; recompute the found entry's position.
            if let Some((_, idx)) = found {
                let pos = q.iter().position(|&i| i == idx).expect("live entry kept");
                found = Some((pos, idx));
            }
        }
        found
    }

    /// Take the value at a scan hit, popping the index eagerly when it sits
    /// at the queue front (the FIFO common case) and tombstoning otherwise.
    fn remove_at(&mut self, (pos, idx): (usize, usize), wildcard: bool) -> T {
        let b = bucket_of(self.slab[idx].source, self.slab[idx].tag, self.mask);
        let val = self.slab[idx].val.take().expect("scan returned live entry");
        if pos == 0 {
            let q = if wildcard {
                &mut self.order
            } else {
                &mut self.buckets[b]
            };
            q.pop_front();
            let s = &mut self.slab[idx];
            s.refs -= 1;
            if s.refs == 0 {
                self.free.push(idx);
            }
        }
        // The removed entry is a tombstone in the counterpart index; pop it
        // (and any older ones) if it reached that queue's front, so slots
        // recycle even under single-sided (pure exact or pure wildcard)
        // workloads.
        send_pop_tombstones(&mut self.order, &mut self.slab, &mut self.free);
        send_pop_tombstones(&mut self.buckets[b], &mut self.slab, &mut self.free);
        val
    }

    /// Every live entry, slab order (shutdown sweeps only).
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = &T> {
        self.slab.iter().filter_map(|s| s.val.as_ref())
    }

    /// `(live, tombstones)` occupancy in O(1): live entries awaiting a
    /// match and tombstoned slab slots not yet recycled. Feeds the
    /// `fabric.match.live` / `fabric.match.tombstones` gauges.
    pub(crate) fn counts(&self) -> (usize, usize) {
        let occupied = self.slab.len() - self.free.len();
        (self.live, occupied.saturating_sub(self.live))
    }

    /// Live entries currently queued (test observability).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.iter_live().count()
    }
}

// --- Posted-receive queue ---------------------------------------------------

struct RecvSlot<T> {
    sel: Selector,
    /// Monotone post-order stamp; the cross-shard tiebreaker that keeps
    /// MPI non-overtaking order between the bucket and sideline paths.
    seq: u64,
    val: Option<T>,
}

/// Posted receives at one rank: exact selectors hash-bucketed, wildcard
/// selectors on an ordered sideline, merged by sequence number at match
/// time.
pub(crate) struct RecvQueue<T> {
    slab: Vec<RecvSlot<T>>,
    free: Vec<usize>,
    buckets: Vec<VecDeque<usize>>,
    sideline: VecDeque<usize>,
    mask: usize,
    next_seq: u64,
    /// Live (non-tombstoned) entries; see [`SendQueue::counts`].
    live: usize,
}

/// Pop tombstones and freshly-dead entries off a receive-index front.
fn recv_clean_front<T>(
    q: &mut VecDeque<usize>,
    slab: &mut [RecvSlot<T>],
    free: &mut Vec<usize>,
    dead: &impl Fn(&T) -> bool,
    drained: &mut u64,
) {
    while let Some(&idx) = q.front() {
        let s = &mut slab[idx];
        match &s.val {
            None => {}
            Some(v) if dead(v) => {
                s.val = None;
                *drained += 1;
            }
            Some(_) => break,
        }
        q.pop_front();
        free.push(idx);
    }
}

/// Drop every tombstone from a receive index, releasing freed slots.
fn recv_compact<T>(q: &mut VecDeque<usize>, slab: &mut [RecvSlot<T>], free: &mut Vec<usize>) {
    q.retain(|&idx| {
        if slab[idx].val.is_some() {
            true
        } else {
            free.push(idx);
            false
        }
    });
}

/// Earliest live entry in one receive index matching `(source, tag)`:
/// `(sequence, position, slab index)`.
fn recv_scan<T>(
    q: &mut VecDeque<usize>,
    slab: &mut [RecvSlot<T>],
    free: &mut Vec<usize>,
    source: usize,
    tag: Tag,
    dead: &impl Fn(&T) -> bool,
    drained: &mut u64,
) -> Option<(u64, usize, usize)> {
    recv_clean_front(q, slab, free, dead, drained);
    let mut skipped = 0usize;
    let mut found = None;
    for (pos, &idx) in q.iter().enumerate() {
        let s = &mut slab[idx];
        let Some(v) = &s.val else {
            skipped += 1;
            continue;
        };
        if dead(v) {
            s.val = None;
            *drained += 1;
            skipped += 1;
            continue;
        }
        if s.sel.matches(source, tag) {
            found = Some((s.seq, pos, idx));
            break;
        }
    }
    if skipped >= COMPACT_SKIP {
        recv_compact(q, slab, free);
        if let Some((seq, _, idx)) = found {
            let pos = q.iter().position(|&i| i == idx).expect("live entry kept");
            found = Some((seq, pos, idx));
        }
    }
    found
}

impl<T> RecvQueue<T> {
    pub(crate) fn new(buckets: usize) -> Self {
        let n = pow2_buckets(buckets);
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            sideline: VecDeque::new(),
            mask: n - 1,
            next_seq: 0,
            live: 0,
        }
    }

    /// Append a posted receive under its selector.
    pub(crate) fn push(&mut self, sel: Selector, val: T) {
        self.live += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = RecvSlot {
            sel,
            seq,
            val: Some(val),
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = slot;
                i
            }
            None => {
                self.slab.push(slot);
                self.slab.len() - 1
            }
        };
        if is_exact(&sel) {
            self.buckets[bucket_of(sel.source as usize, sel.tag, self.mask)].push_back(idx);
        } else {
            self.sideline.push_back(idx);
        }
    }

    /// Remove and return the earliest-posted live receive matching an
    /// arriving `(source, tag)` envelope, with `true` when the winner was
    /// a wildcard-selector post. The exact bucket and the wildcard
    /// sideline each yield their earliest candidate; the smaller sequence
    /// number wins, preserving post order across shards.
    pub(crate) fn take_match(
        &mut self,
        source: usize,
        tag: Tag,
        dead: impl Fn(&T) -> bool,
        drained: &mut u64,
    ) -> Option<(T, bool)> {
        let b = bucket_of(source, tag, self.mask);
        let d0 = *drained;
        let (exact, wild) = {
            let Self {
                slab,
                free,
                buckets,
                sideline,
                ..
            } = &mut *self;
            let exact = recv_scan(&mut buckets[b], slab, free, source, tag, &dead, drained);
            let wild = recv_scan(sideline, slab, free, source, tag, &dead, drained);
            (exact, wild)
        };
        self.live -= (*drained - d0) as usize;
        let (from_wild, (_, pos, idx)) = match (exact, wild) {
            (None, None) => return None,
            (Some(e), None) => (false, e),
            (None, Some(w)) => (true, w),
            (Some(e), Some(w)) => {
                if e.0 < w.0 {
                    (false, e)
                } else {
                    (true, w)
                }
            }
        };
        let val = self.slab[idx].val.take().expect("scan returned live entry");
        self.live -= 1;
        if pos == 0 {
            let q = if from_wild {
                &mut self.sideline
            } else {
                &mut self.buckets[b]
            };
            q.pop_front();
            self.free.push(idx);
        }
        Some((val, from_wild))
    }

    /// Every live entry, slab order (shutdown sweeps only).
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = &T> {
        self.slab.iter().filter_map(|s| s.val.as_ref())
    }

    /// `(live, tombstones)` occupancy in O(1); see [`SendQueue::counts`].
    pub(crate) fn counts(&self) -> (usize, usize) {
        let occupied = self.slab.len() - self.free.len();
        (self.live, occupied.saturating_sub(self.live))
    }

    /// Live entries currently queued (test observability).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.iter_live().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let s = Selector::new(3, 7);
        assert!(s.matches(3, 7));
        assert!(!s.matches(2, 7));
        assert!(!s.matches(3, 8));
    }

    #[test]
    fn any_source() {
        let s = Selector::new(ANY_SOURCE, 7);
        assert!(s.matches(0, 7));
        assert!(s.matches(9, 7));
        assert!(!s.matches(9, 8));
    }

    #[test]
    fn any_tag() {
        let s = Selector::new(1, ANY_TAG);
        assert!(s.matches(1, 0));
        assert!(s.matches(1, i32::MAX));
        assert!(!s.matches(2, 0));
    }

    #[test]
    fn full_wildcard() {
        let s = Selector::new(ANY_SOURCE, ANY_TAG);
        assert!(s.matches(0, 0));
        assert!(s.matches(7, 42));
    }

    // --- sharded engine -----------------------------------------------------

    fn never_dead(_: &u32) -> bool {
        false
    }

    #[test]
    fn bucket_counts_round_to_powers_of_two() {
        assert_eq!(pow2_buckets(0), 1);
        assert_eq!(pow2_buckets(1), 1);
        assert_eq!(pow2_buckets(3), 4);
        assert_eq!(pow2_buckets(64), 64);
        assert_eq!(pow2_buckets(usize::MAX), 1 << 16);
    }

    #[test]
    fn exact_take_is_fifo_per_key() {
        let mut q = SendQueue::new(8);
        q.push(0, 5, 1u32);
        q.push(1, 5, 2);
        q.push(0, 5, 3);
        let mut d = 0;
        let (v, wild) = q.take(Selector::new(0, 5), never_dead, &mut d).unwrap();
        assert_eq!((v, wild), (1, false));
        assert_eq!(
            q.take(Selector::new(0, 5), never_dead, &mut d).unwrap().0,
            3
        );
        assert_eq!(
            q.take(Selector::new(1, 5), never_dead, &mut d).unwrap().0,
            2
        );
        assert!(q.take(Selector::new(0, 5), never_dead, &mut d).is_none());
        assert_eq!(d, 0);
    }

    #[test]
    fn wildcard_take_is_earliest_arrival_across_buckets() {
        let mut q = SendQueue::new(8);
        for (i, tag) in [9, 3, 7, 1].into_iter().enumerate() {
            q.push(i, tag, i as u32);
        }
        let mut d = 0;
        // Full wildcard drains in exact arrival order regardless of bucket.
        for want in 0..4u32 {
            let (v, wild) = q
                .take(Selector::new(ANY_SOURCE, ANY_TAG), never_dead, &mut d)
                .unwrap();
            assert_eq!((v, wild), (want, true));
        }
    }

    #[test]
    fn exact_removal_is_invisible_to_wildcard_order() {
        let mut q = SendQueue::new(4);
        q.push(0, 1, 10u32);
        q.push(0, 2, 20);
        q.push(0, 3, 30);
        let mut d = 0;
        // Take the middle entry via the exact path (mid-queue tombstone in
        // the sideline), then confirm the wildcard view skips it.
        assert_eq!(
            q.take(Selector::new(0, 2), never_dead, &mut d).unwrap().0,
            20
        );
        assert_eq!(
            q.take(Selector::new(0, ANY_TAG), never_dead, &mut d)
                .unwrap()
                .0,
            10
        );
        assert_eq!(
            q.take(Selector::new(ANY_SOURCE, ANY_TAG), never_dead, &mut d)
                .unwrap()
                .0,
            30
        );
        assert_eq!(q.live(), 0);
    }

    #[test]
    fn dead_entries_drain_lazily_and_are_counted() {
        let mut q = SendQueue::new(2);
        for i in 0..50u32 {
            q.push(0, 0, i);
        }
        // Everything except the last entry is dead.
        let dead = |v: &u32| *v != 49;
        let mut d = 0;
        let (v, _) = q.take(Selector::new(0, 0), dead, &mut d).unwrap();
        assert_eq!(v, 49);
        assert_eq!(d, 49, "every dead entry drained exactly once");
        assert_eq!(q.live(), 0);
        // A second scan never recounts the drained entries.
        let mut d2 = 0;
        assert!(q.take(Selector::new(0, 0), dead, &mut d2).is_none());
        assert_eq!(d2, 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = SendQueue::new(4);
        q.push(3, 9, 77u32);
        let mut d = 0;
        let (src, tag, v) = q
            .peek(Selector::new(ANY_SOURCE, 9), never_dead, &mut d)
            .unwrap();
        assert_eq!((src, tag, *v), (3, 9, 77));
        assert_eq!(q.live(), 1);
        assert_eq!(
            q.take(Selector::new(3, 9), never_dead, &mut d).unwrap().0,
            77
        );
    }

    #[test]
    fn slots_are_reused_after_both_indexes_release() {
        let mut q = SendQueue::new(1);
        let mut d = 0;
        for round in 0..100u32 {
            q.push(0, 0, round);
            assert_eq!(
                q.take(Selector::new(0, 0), never_dead, &mut d).unwrap().0,
                round
            );
        }
        assert!(
            q.slab.len() <= 2,
            "freelist recycles slots: {}",
            q.slab.len()
        );
    }

    #[test]
    fn recv_queue_merges_bucket_and_sideline_by_post_order() {
        // Exact posted first, wildcard second: the exact entry wins.
        let mut q = RecvQueue::new(8);
        q.push(Selector::new(0, 4), 1u32);
        q.push(Selector::new(ANY_SOURCE, ANY_TAG), 2);
        let mut d = 0;
        let (v, wild) = q.take_match(0, 4, never_dead, &mut d).unwrap();
        assert_eq!((v, wild), (1, false));
        assert_eq!(q.take_match(0, 4, never_dead, &mut d).unwrap(), (2, true));

        // Wildcard posted first: it must win even though the exact bucket
        // has a hit — post order across shards is the MPI guarantee.
        let mut q = RecvQueue::new(8);
        q.push(Selector::new(ANY_SOURCE, 4), 10u32);
        q.push(Selector::new(0, 4), 20);
        let (v, wild) = q.take_match(0, 4, never_dead, &mut d).unwrap();
        assert_eq!((v, wild), (10, true));
        assert_eq!(q.take_match(0, 4, never_dead, &mut d).unwrap(), (20, false));
        assert_eq!(q.live(), 0);
    }

    #[test]
    fn recv_queue_drains_cancelled_posts() {
        let mut q = RecvQueue::new(4);
        for i in 0..30u32 {
            q.push(Selector::new(0, 0), i);
        }
        q.push(Selector::new(ANY_SOURCE, ANY_TAG), 99);
        let dead = |v: &u32| *v < 30;
        let mut d = 0;
        assert_eq!(q.take_match(0, 0, dead, &mut d).unwrap(), (99, true));
        assert_eq!(d, 30);
        assert_eq!(q.live(), 0);
    }

    // --- seeded property test: engine ≡ reference linear matcher ------------

    /// The pre-shard matcher, verbatim semantics: flat vectors scanned in
    /// order, dead entries skipped.
    struct RefMatcher {
        sends: Vec<(usize, Tag, u32)>,
        recvs: Vec<(Selector, u32)>,
    }

    impl RefMatcher {
        fn send(&mut self, src: usize, tag: Tag, dead: &dyn Fn(u32) -> bool) -> Option<u32> {
            self.recvs.retain(|(_, rid)| !dead(*rid));
            let pos = self
                .recvs
                .iter()
                .position(|(sel, _)| sel.matches(src, tag))?;
            Some(self.recvs.remove(pos).1)
        }

        fn recv(&mut self, sel: Selector, dead: &dyn Fn(u32) -> bool) -> Option<u32> {
            self.sends.retain(|(_, _, sid)| !dead(*sid));
            let pos = self
                .sends
                .iter()
                .position(|(s, t, _)| sel.matches(*s, *t))?;
            Some(self.sends.remove(pos).2)
        }
    }

    #[test]
    fn engine_matches_envelope_for_envelope_with_linear_reference() {
        use mpicd_obs::XorShift64Star;
        use std::collections::HashSet;

        for seed in 1..=40u64 {
            for buckets in [1usize, 4, 64] {
                let mut rng = XorShift64Star::new(seed * 7919);
                let mut sendq = SendQueue::new(buckets);
                let mut recvq = RecvQueue::new(buckets);
                let mut reference = RefMatcher {
                    sends: Vec::new(),
                    recvs: Vec::new(),
                };
                let mut cancelled: HashSet<u32> = HashSet::new();
                let mut engine_pairs: Vec<(u32, u32)> = Vec::new();
                let mut ref_pairs: Vec<(u32, u32)> = Vec::new();
                let mut live_ids: Vec<u32> = Vec::new();

                for id in 0..400u32 {
                    match rng.next_below(10) {
                        // Post a send with a concrete envelope.
                        0..=3 => {
                            let src = rng.range(0, 4);
                            let tag = rng.range(0, 5) as Tag;
                            let c = cancelled.clone();
                            let dead = move |v: &u32| c.contains(v);
                            let mut d = 0;
                            if let Some((rid, _)) = recvq.take_match(src, tag, dead, &mut d) {
                                engine_pairs.push((id, rid));
                            } else {
                                sendq.push(src, tag, id);
                                live_ids.push(id);
                            }
                            let c = cancelled.clone();
                            if let Some(rid) = reference.send(src, tag, &|v| c.contains(&v)) {
                                ref_pairs.push((id, rid));
                            } else {
                                reference.sends.push((src, tag, id));
                            }
                        }
                        // Post a receive across the full wildcard mix.
                        4..=7 => {
                            let src = if rng.chance(1, 3) {
                                ANY_SOURCE
                            } else {
                                rng.range(0, 4) as i32
                            };
                            let tag = if rng.chance(1, 3) {
                                ANY_TAG
                            } else {
                                rng.range(0, 5) as Tag
                            };
                            let sel = Selector::new(src, tag);
                            let c = cancelled.clone();
                            let dead = move |v: &u32| c.contains(v);
                            let mut d = 0;
                            if let Some((sid, _)) = sendq.take(sel, dead, &mut d) {
                                engine_pairs.push((sid, id));
                            } else {
                                recvq.push(sel, id);
                                live_ids.push(id);
                            }
                            let c = cancelled.clone();
                            if let Some(sid) = reference.recv(sel, &|v| c.contains(&v)) {
                                ref_pairs.push((sid, id));
                            } else {
                                reference.recvs.push((sel, id));
                            }
                        }
                        // Cancel a random still-queued entry.
                        _ => {
                            if !live_ids.is_empty() {
                                let victim = live_ids[rng.range(0, live_ids.len())];
                                cancelled.insert(victim);
                            }
                        }
                    }
                    // The O(1) occupancy counters must always agree with a
                    // full slab walk — they feed the depth gauges.
                    assert_eq!(
                        sendq.counts().0,
                        sendq.live(),
                        "seed {seed} buckets {buckets}: send live count drift"
                    );
                    assert_eq!(
                        recvq.counts().0,
                        recvq.live(),
                        "seed {seed} buckets {buckets}: recv live count drift"
                    );
                }
                assert_eq!(
                    engine_pairs, ref_pairs,
                    "seed {seed} buckets {buckets}: pairing history diverged"
                );
            }
        }
    }
}

/// Model-checked lazy-drain protocol tests. Run with
/// `RUSTFLAGS="--cfg mpicd_check" cargo test -p mpicd-fabric`; the
/// `mpicd_obs::sync` seam then resolves to the instrumented primitives and
/// these tests explore interleavings of cancellation racing a match.
#[cfg(all(test, mpicd_check))]
mod model_tests {
    use super::*;
    use mpicd_check::{model, thread as mthread};
    use mpicd_obs::sync::atomic::{AtomicBool, Ordering};
    use mpicd_obs::sync::Mutex;
    use std::sync::Arc;

    /// A cancel racing a match: the cancelled entry is delivered exactly
    /// once or drained exactly once — never both, never lost — and the
    /// survivor behind it is always delivered.
    #[test]
    fn cancel_racing_match_never_loses_or_duplicates() {
        model(|| {
            let q = Arc::new(Mutex::new(SendQueue::<u32>::new(2)));
            let cancelled = Arc::new(AtomicBool::new(false));
            {
                let mut g = q.lock();
                g.push(0, 7, 1);
                g.push(0, 7, 2);
            }
            let c = Arc::clone(&cancelled);
            let canceller = mthread::spawn(move || c.store(true, Ordering::Release));
            let (qm, cm) = (Arc::clone(&q), Arc::clone(&cancelled));
            let matcher = mthread::spawn(move || {
                let mut drained = 0;
                let got = qm.lock().take(
                    Selector::new(0, 7),
                    |v| *v == 1 && cm.load(Ordering::Acquire),
                    &mut drained,
                );
                (got.map(|(v, _)| v), drained)
            });
            canceller.join();
            let (got, d1) = matcher.join();
            // Quiesce: with the flag now definitely set, drain what's left.
            let mut d2 = 0;
            let mut rest = Vec::new();
            loop {
                let taken = q.lock().take(Selector::new(0, 7), |v| *v == 1, &mut d2);
                match taken {
                    Some((v, _)) => rest.push(v),
                    None => break,
                }
            }
            let delivered: Vec<u32> = got.into_iter().chain(rest).collect();
            assert_eq!(
                delivered.iter().filter(|&&v| v == 2).count(),
                1,
                "the live entry is always delivered exactly once"
            );
            let one = delivered.iter().filter(|&&v| v == 1).count() as u64;
            assert_eq!(one + d1 + d2, 1, "cancelled entry delivered xor drained");
            if delivered.len() == 2 {
                assert_eq!(delivered, vec![1, 2], "non-overtaking survives the race");
            }
        });
    }

    /// Two matchers racing on one key behind the lock take disjoint
    /// entries (the tombstone protocol cannot double-deliver a slot).
    #[test]
    fn racing_matchers_take_disjoint_entries() {
        model(|| {
            let q = Arc::new(Mutex::new(SendQueue::<u32>::new(1)));
            {
                let mut g = q.lock();
                g.push(0, 0, 10);
                g.push(0, 0, 20);
            }
            let taker = |q: &Arc<Mutex<SendQueue<u32>>>| {
                let q = Arc::clone(q);
                mthread::spawn(move || {
                    let mut d = 0;
                    q.lock()
                        .take(Selector::new(0, 0), |_| false, &mut d)
                        .map(|(v, _)| v)
                })
            };
            let t1 = taker(&q);
            let t2 = taker(&q);
            let mut got = vec![t1.join().unwrap(), t2.join().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![10, 20], "each entry delivered exactly once");
        });
    }
}
