//! Fabric traffic counters.
//!
//! Tests (and EXPERIMENTS.md claims) rely on counting *how* data moved:
//! e.g. a pickle out-of-band transfer issues one message per buffer while
//! the custom-datatype path folds everything into a single message, and
//! eager messages pay a bounce-buffer copy that rendezvous avoids.
//!
//! [`FabricStats`] keeps the per-fabric counters the public API exposes;
//! the crate-private `FabricMetrics` mirrors the same traffic into the process-global
//! `mpicd-obs` registry (plus phase-time counters fed by spans) so the
//! benchmark harness can take registry snapshots without holding a fabric
//! handle.

use mpicd_obs::metrics::{global, Counter, Histogram};
use mpicd_obs::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Samples a windowed latency distribution has to hold before the
/// straggler threshold arms. Below this the p99 of the previous window
/// is noise and flagging against it would tag healthy transfers.
const MIN_WINDOW_SAMPLES: u64 = 100;

/// Width of the straggler gate's rotating window (1 s: long enough to
/// collect [`MIN_WINDOW_SAMPLES`] under any sustained load, short
/// enough that the threshold tracks shifting traffic).
const STRAGGLER_WINDOW_NS: u64 = 1_000_000_000;

/// Online straggler detector: log2-bucketed latency histogram over a
/// rotating wall-clock window. Each completed transfer's active time is
/// recorded into the current window; when the window rolls over, the
/// p99 of the *closed* window sets the straggler threshold (2x the
/// p99 bucket's upper bound) for the next one. A transfer is flagged
/// the moment it completes — no post-mortem pass.
///
/// The gate is advisory: rotation races with concurrent `observe`
/// calls can misplace a handful of samples across a window boundary,
/// which shifts the p99 by at most a bucket. It disarms (threshold 0)
/// whenever the previous window is stale (a gap of idle windows) or
/// too thin ([`MIN_WINDOW_SAMPLES`]).
#[derive(Debug)]
pub(crate) struct StragglerGate {
    window_ns: u64,
    epoch: AtomicU64,
    buckets: [AtomicU64; 64],
    threshold_ns: AtomicU64,
}

impl StragglerGate {
    pub(crate) fn new(window_ns: u64) -> Self {
        Self {
            window_ns: window_ns.max(1),
            epoch: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            threshold_ns: AtomicU64::new(0),
        }
    }

    /// Upper bound of log2 bucket `idx` (the largest value that maps there).
    fn bucket_upper(idx: usize) -> u64 {
        if idx >= 63 {
            u64::MAX
        } else {
            (2u64 << idx) - 1
        }
    }

    fn bucket_index(v: u64) -> usize {
        63 - (v | 1).leading_zeros() as usize
    }

    /// Record one completed transfer's active time; returns `true` when
    /// it exceeds the armed threshold from the previous window.
    pub(crate) fn observe(&self, now_ns: u64, active_ns: u64) -> bool {
        let epoch = now_ns / self.window_ns;
        let cur = self.epoch.load(Ordering::Relaxed);
        if epoch != cur
            && self
                .epoch
                .compare_exchange(cur, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            // This thread won the rotation: close the previous window,
            // derive the next threshold from its p99, and reset.
            let counts: Vec<u64> = self
                .buckets
                .iter()
                .map(|b| b.swap(0, Ordering::Relaxed))
                .collect();
            let total: u64 = counts.iter().sum();
            let thr = if epoch == cur + 1 && total >= MIN_WINDOW_SAMPLES {
                let rank = (total * 99).div_ceil(100);
                let mut cum = 0u64;
                let mut p99_idx = counts.len() - 1;
                for (i, c) in counts.iter().enumerate() {
                    cum += c;
                    if cum >= rank {
                        p99_idx = i;
                        break;
                    }
                }
                Self::bucket_upper(p99_idx).saturating_mul(2)
            } else {
                // Idle gap or thin window: disarm rather than flag
                // against stale statistics.
                0
            };
            self.threshold_ns.store(thr, Ordering::Relaxed);
        }
        self.buckets[Self::bucket_index(active_ns)].fetch_add(1, Ordering::Relaxed);
        let thr = self.threshold_ns.load(Ordering::Relaxed);
        thr != 0 && active_ns > thr
    }

    /// Currently armed threshold in ns (0 = disarmed).
    #[cfg(test)]
    pub(crate) fn threshold(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }
}

/// Move `gauge` by the difference between a resource's occupancy before
/// and after an operation, issuing only the one delta (O(1) per call —
/// never a rescan of the structure).
pub(crate) fn gauge_shift(gauge: &telemetry::Gauge, before: usize, after: usize) {
    if after > before {
        gauge.add((after - before) as u64);
    } else if before > after {
        gauge.sub((before - after) as u64);
    }
}

/// Monotonic counters describing all traffic a [`Fabric`](crate::Fabric)
/// has carried.
#[derive(Debug, Default)]
pub struct FabricStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    eager: AtomicU64,
    rendezvous: AtomicU64,
    fragments: AtomicU64,
    regions: AtomicU64,
    unexpected: AtomicU64,
    pipelined: AtomicU64,
    match_exact: AtomicU64,
    match_wildcard: AtomicU64,
    match_drained: AtomicU64,
    type_mismatch: AtomicU64,
}

/// A copied-out, plain view of [`FabricStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsView {
    /// Completed messages.
    pub messages: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
    /// Messages carried with the eager protocol.
    pub eager: u64,
    /// Messages carried with the rendezvous protocol.
    pub rendezvous: u64,
    /// Pipeline fragments transferred.
    pub fragments: u64,
    /// Scatter/gather entries transferred.
    pub regions: u64,
    /// Messages that arrived before a matching receive was posted.
    pub unexpected: u64,
    /// Messages whose payload moved through the parallel fragment pipeline
    /// (zero whenever `MPICD_PIPELINE=0` or the transfer was ineligible).
    pub pipelined: u64,
    /// Send/recv pairings found through the O(1) exact-match hash path.
    pub match_exact: u64,
    /// Pairings that required the ordered wildcard sideline (ANY_SOURCE /
    /// ANY_TAG on either side of the match).
    pub match_wildcard: u64,
    /// Cancelled or already-completed queue entries lazily drained while
    /// matching (each entry counted once).
    pub match_drained: u64,
    /// Matched pairs whose structural type signatures disagreed (counted
    /// in `warn` and `enforce` modes; see `MPICD_TYPECHECK`).
    pub type_mismatch: u64,
}

impl FabricStats {
    pub(crate) fn record_message(
        &self,
        bytes: usize,
        rendezvous: bool,
        fragments: usize,
        regions: usize,
    ) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if rendezvous {
            self.rendezvous.fetch_add(1, Ordering::Relaxed);
        } else {
            self.eager.fetch_add(1, Ordering::Relaxed);
        }
        self.fragments
            .fetch_add(fragments as u64, Ordering::Relaxed);
        self.regions.fetch_add(regions as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_unexpected(&self) {
        self.unexpected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_pipelined(&self) {
        self.pipelined.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_match(&self, wildcard: bool) {
        if wildcard {
            self.match_wildcard.fetch_add(1, Ordering::Relaxed);
        } else {
            self.match_exact.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_drained(&self, n: u64) {
        if n > 0 {
            self.match_drained.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_type_mismatch(&self) {
        self.type_mismatch.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current counter values.
    pub fn view(&self) -> StatsView {
        StatsView {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            eager: self.eager.load(Ordering::Relaxed),
            rendezvous: self.rendezvous.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            unexpected: self.unexpected.load(Ordering::Relaxed),
            pipelined: self.pipelined.load(Ordering::Relaxed),
            match_exact: self.match_exact.load(Ordering::Relaxed),
            match_wildcard: self.match_wildcard.load(Ordering::Relaxed),
            match_drained: self.match_drained.load(Ordering::Relaxed),
            type_mismatch: self.type_mismatch.load(Ordering::Relaxed),
        }
    }
}

impl StatsView {
    /// Difference between two views. Saturating: callers sometimes compare
    /// views from different fabrics or across a counter reset, and a
    /// nonsensical ordering must degrade to zero, not panic in debug builds.
    pub fn since(&self, earlier: &StatsView) -> StatsView {
        StatsView {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            eager: self.eager.saturating_sub(earlier.eager),
            rendezvous: self.rendezvous.saturating_sub(earlier.rendezvous),
            fragments: self.fragments.saturating_sub(earlier.fragments),
            regions: self.regions.saturating_sub(earlier.regions),
            unexpected: self.unexpected.saturating_sub(earlier.unexpected),
            pipelined: self.pipelined.saturating_sub(earlier.pipelined),
            match_exact: self.match_exact.saturating_sub(earlier.match_exact),
            match_wildcard: self.match_wildcard.saturating_sub(earlier.match_wildcard),
            match_drained: self.match_drained.saturating_sub(earlier.match_drained),
            type_mismatch: self.type_mismatch.saturating_sub(earlier.type_mismatch),
        }
    }
}

/// Handles into the process-global `mpicd-obs` registry for everything the
/// fabric reports. Created once per [`Fabric`](crate::Fabric); all fabrics
/// share the same underlying registry entries (get-or-create by name).
///
/// The `*_ns` phase counters are fed by `span_acc` guards and therefore
/// only advance while tracing is enabled; the traffic counters and the
/// modeled `wire_ns` are always on (same cost class as [`FabricStats`]).
#[derive(Debug, Clone)]
pub(crate) struct FabricMetrics {
    pub messages: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub eager: Arc<Counter>,
    pub rendezvous: Arc<Counter>,
    pub fragments: Arc<Counter>,
    pub regions: Arc<Counter>,
    pub unexpected: Arc<Counter>,
    /// Modeled wire time (always on).
    pub wire_ns: Arc<Counter>,
    /// Wall time spent inside pack callbacks (tracing only).
    pub pack_ns: Arc<Counter>,
    /// Wall time spent inside unpack callbacks (tracing only).
    pub unpack_ns: Arc<Counter>,
    /// Bytes copied into eager bounce buffers (the copy the custom path avoids).
    pub copy_bytes: Arc<Counter>,
    /// Message-size distribution.
    pub msg_size: Arc<Histogram>,
    /// Transfers executed by the parallel fragment pipeline (always on).
    pub pipeline_transfers: Arc<Counter>,
    /// Fragments executed by the parallel engine (always on).
    pub pipeline_frags: Arc<Counter>,
    /// Worker threads spawned by pipeline pools (recorded once per pool).
    pub pipeline_threads: Arc<Counter>,
    /// Wall time inside the parallel engine, submit to completion
    /// (tracing only, fed by a `span_acc` guard like `pack_ns`).
    pub pipeline_ns: Arc<Counter>,
    /// Pairings found through the exact-match hash path (always on).
    pub match_exact: Arc<Counter>,
    /// Pairings that needed the wildcard sideline (always on).
    pub match_wildcard: Arc<Counter>,
    /// Dead queue entries lazily drained while matching (always on).
    pub match_drained: Arc<Counter>,
    /// Matched pairs whose structural signatures disagreed (always on;
    /// counted in `warn` and `enforce` typecheck modes).
    pub type_mismatch: Arc<Counter>,
    /// Continuous telemetry (`MPICD_TELEMETRY=1`): message traffic as a
    /// windowed time series (count = messages, sum = payload bytes).
    pub tele_traffic: Arc<telemetry::Series>,
    /// Continuous telemetry: modeled per-message wire latency sketch.
    pub tele_wire_ns: Arc<telemetry::Sketch>,
    /// Continuous telemetry: match-to-complete wall time per transfer.
    pub tele_active_ns: Arc<telemetry::Sketch>,
    /// Continuous telemetry: match events as a windowed series (count =
    /// pairings; rate over a window is matches/sec).
    pub tele_match: Arc<telemetry::Series>,
    /// Transfers flagged by the online straggler gate (always on).
    pub stragglers: Arc<Counter>,
    /// Continuous telemetry: stragglers as a windowed series (count =
    /// flagged transfers, sum = their active ns), so a live scraper sees
    /// the current window's straggler rate, not just the lifetime total.
    pub tele_stragglers: Arc<telemetry::Series>,
    /// Windowed p99 gate feeding `stragglers`.
    pub straggler_gate: Arc<StragglerGate>,
    /// Level gauge: eager bounce-buffer freelist occupancy.
    pub g_bounce_pool: Arc<telemetry::Gauge>,
    /// Level gauge: pending unexpected sends across all destinations.
    pub g_unexpected: Arc<telemetry::Gauge>,
    /// Level gauge: live entries across matching slabs (posted + unexpected).
    pub g_match_live: Arc<telemetry::Gauge>,
    /// Level gauge: tombstoned (matched/cancelled, not yet compacted)
    /// matching-slab entries.
    pub g_match_tombstones: Arc<telemetry::Gauge>,
    /// Level gauge: free scratch-ring slots in the pipeline pool.
    pub g_scratch_free: Arc<telemetry::Gauge>,
    /// Level gauge: jobs queued to the pipeline worker pool.
    pub g_pipeline_queue: Arc<telemetry::Gauge>,
}

impl FabricMetrics {
    /// Handles into the process-global registry under `fabric.*` names.
    pub(crate) fn from_global() -> Self {
        let r = global();
        Self {
            messages: r.counter("fabric.messages"),
            bytes: r.counter("fabric.bytes"),
            eager: r.counter("fabric.eager"),
            rendezvous: r.counter("fabric.rendezvous"),
            fragments: r.counter("fabric.fragments"),
            regions: r.counter("fabric.regions"),
            unexpected: r.counter("fabric.unexpected"),
            wire_ns: r.counter("fabric.wire_ns"),
            pack_ns: r.counter("fabric.pack_ns"),
            unpack_ns: r.counter("fabric.unpack_ns"),
            copy_bytes: r.counter("fabric.copy_bytes"),
            msg_size: r.histogram("fabric.msg_size"),
            pipeline_transfers: r.counter("fabric.pipeline.transfers"),
            pipeline_frags: r.counter("fabric.pipeline.frags"),
            pipeline_threads: r.counter("fabric.pipeline.threads"),
            pipeline_ns: r.counter("fabric.pipeline.ns"),
            match_exact: r.counter("fabric.match.exact"),
            match_wildcard: r.counter("fabric.match.wildcard"),
            match_drained: r.counter("fabric.match.drained"),
            type_mismatch: r.counter("fabric.type_mismatch"),
            tele_traffic: telemetry::series("fabric.traffic"),
            tele_wire_ns: telemetry::sketch("fabric.wire_latency_ns"),
            tele_active_ns: telemetry::sketch("fabric.transfer_active_ns"),
            tele_match: telemetry::series("fabric.match.rate"),
            stragglers: r.counter("fabric.stragglers"),
            tele_stragglers: telemetry::series("fabric.stragglers"),
            straggler_gate: Arc::new(StragglerGate::new(STRAGGLER_WINDOW_NS)),
            g_bounce_pool: telemetry::gauge("fabric.bounce_pool"),
            g_unexpected: telemetry::gauge("fabric.unexpected_depth"),
            g_match_live: telemetry::gauge("fabric.match.live"),
            g_match_tombstones: telemetry::gauge("fabric.match.tombstones"),
            g_scratch_free: telemetry::gauge("fabric.scratch_free"),
            g_pipeline_queue: telemetry::gauge("fabric.pipeline.queue"),
        }
    }

    /// Standalone handles not registered anywhere — for unit tests that
    /// must not see cross-test traffic through the global registry.
    #[cfg(test)]
    pub(crate) fn detached() -> Self {
        Self {
            messages: Arc::new(Counter::new()),
            bytes: Arc::new(Counter::new()),
            eager: Arc::new(Counter::new()),
            rendezvous: Arc::new(Counter::new()),
            fragments: Arc::new(Counter::new()),
            regions: Arc::new(Counter::new()),
            unexpected: Arc::new(Counter::new()),
            wire_ns: Arc::new(Counter::new()),
            pack_ns: Arc::new(Counter::new()),
            unpack_ns: Arc::new(Counter::new()),
            copy_bytes: Arc::new(Counter::new()),
            msg_size: Arc::new(Histogram::new()),
            pipeline_transfers: Arc::new(Counter::new()),
            pipeline_frags: Arc::new(Counter::new()),
            pipeline_threads: Arc::new(Counter::new()),
            pipeline_ns: Arc::new(Counter::new()),
            match_exact: Arc::new(Counter::new()),
            match_wildcard: Arc::new(Counter::new()),
            match_drained: Arc::new(Counter::new()),
            type_mismatch: Arc::new(Counter::new()),
            tele_traffic: Arc::new(telemetry::Series::standalone(1_000_000_000)),
            tele_wire_ns: Arc::new(telemetry::Sketch::standalone()),
            tele_active_ns: Arc::new(telemetry::Sketch::standalone()),
            tele_match: Arc::new(telemetry::Series::standalone(1_000_000_000)),
            stragglers: Arc::new(Counter::new()),
            tele_stragglers: Arc::new(telemetry::Series::standalone(1_000_000_000)),
            straggler_gate: Arc::new(StragglerGate::new(STRAGGLER_WINDOW_NS)),
            g_bounce_pool: Arc::new(telemetry::Gauge::standalone()),
            g_unexpected: Arc::new(telemetry::Gauge::standalone()),
            g_match_live: Arc::new(telemetry::Gauge::standalone()),
            g_match_tombstones: Arc::new(telemetry::Gauge::standalone()),
            g_scratch_free: Arc::new(telemetry::Gauge::standalone()),
            g_pipeline_queue: Arc::new(telemetry::Gauge::standalone()),
        }
    }

    /// Mirror of [`FabricStats::record_message`], plus modeled wire time
    /// and the message-size histogram.
    pub(crate) fn record_message(
        &self,
        bytes: usize,
        rendezvous: bool,
        fragments: usize,
        regions: usize,
        wire_ns: f64,
    ) {
        self.messages.inc();
        self.bytes.add(bytes as u64);
        if rendezvous {
            self.rendezvous.inc();
        } else {
            self.eager.inc();
        }
        self.fragments.add(fragments as u64);
        self.regions.add(regions as u64);
        self.wire_ns.add(wire_ns as u64);
        self.msg_size.record(bytes as u64);
        // Continuous telemetry mirror; each call is one relaxed load when
        // MPICD_TELEMETRY is off.
        self.tele_traffic.add(bytes as u64);
        self.tele_wire_ns.record(wire_ns as u64);
    }

    /// Mirror of [`FabricStats::record_match`] into the global registry and
    /// the `fabric.match.rate` telemetry series.
    pub(crate) fn record_match(&self, wildcard: bool) {
        if wildcard {
            self.match_wildcard.inc();
        } else {
            self.match_exact.inc();
        }
        self.tele_match.add(1);
    }

    /// Mirror of [`FabricStats::record_drained`].
    pub(crate) fn record_drained(&self, n: u64) {
        if n > 0 {
            self.match_drained.add(n);
        }
    }

    /// Feed one completed transfer's active time through the straggler
    /// gate, counting it live if it exceeds the windowed p99 threshold.
    pub(crate) fn record_straggler_check(&self, now_ns: u64, active_ns: u64) {
        if self.straggler_gate.observe(now_ns, active_ns) {
            self.stragglers.inc();
            self.tele_stragglers.add(active_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_views() {
        let s = FabricStats::default();
        s.record_message(1024, false, 1, 1);
        s.record_message(1 << 20, true, 16, 3);
        s.record_unexpected();
        let v = s.view();
        assert_eq!(v.messages, 2);
        assert_eq!(v.bytes, 1024 + (1 << 20));
        assert_eq!(v.eager, 1);
        assert_eq!(v.rendezvous, 1);
        assert_eq!(v.fragments, 17);
        assert_eq!(v.regions, 4);
        assert_eq!(v.unexpected, 1);
    }

    #[test]
    fn since_subtracts() {
        let s = FabricStats::default();
        s.record_message(10, false, 1, 1);
        let a = s.view();
        s.record_message(20, false, 1, 1);
        let b = s.view();
        let d = b.since(&a);
        assert_eq!(d.messages, 1);
        assert_eq!(d.bytes, 20);
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        // Regression: `since` across a reset (or with views from different
        // fabrics) used plain subtraction and panicked in debug builds.
        let busy = StatsView {
            messages: 5,
            bytes: 100,
            eager: 3,
            rendezvous: 2,
            fragments: 7,
            regions: 9,
            unexpected: 1,
            pipelined: 4,
            match_exact: 6,
            match_wildcard: 2,
            match_drained: 3,
            type_mismatch: 1,
        };
        let fresh = StatsView::default();
        let d = fresh.since(&busy);
        assert_eq!(d, StatsView::default(), "negative deltas clamp to zero");
        // The sane direction still subtracts exactly.
        assert_eq!(busy.since(&fresh), busy);
    }

    #[test]
    fn match_counters_split_exact_and_wildcard() {
        let s = FabricStats::default();
        s.record_match(false);
        s.record_match(false);
        s.record_match(true);
        s.record_drained(5);
        s.record_drained(0);
        let v = s.view();
        assert_eq!(v.match_exact, 2);
        assert_eq!(v.match_wildcard, 1);
        assert_eq!(v.match_drained, 5);

        let m = FabricMetrics::detached();
        m.record_match(true);
        m.record_drained(7);
        assert_eq!(m.match_wildcard.get(), 1);
        assert_eq!(m.match_exact.get(), 0);
        assert_eq!(m.match_drained.get(), 7);
    }

    #[test]
    fn straggler_gate_arms_from_previous_window_p99() {
        let g = StragglerGate::new(1_000);
        // Window 0: 200 samples around 100 ns (bucket 6, upper bound 127).
        for i in 0..200u64 {
            assert!(!g.observe(i, 100), "gate must stay disarmed in window 0");
        }
        assert_eq!(g.threshold(), 0);
        // First observe in window 1 rotates; threshold = 2 * 127 = 254.
        assert!(!g.observe(1_000, 100));
        assert_eq!(g.threshold(), 254);
        // A 10 µs transfer in window 1 is flagged live.
        assert!(g.observe(1_100, 10_000));
        // A sub-threshold one is not.
        assert!(!g.observe(1_200, 200));
    }

    #[test]
    fn straggler_gate_disarms_on_thin_or_stale_windows() {
        let g = StragglerGate::new(1_000);
        // Thin window: below MIN_WINDOW_SAMPLES, never arms.
        for i in 0..10u64 {
            g.observe(i, 100);
        }
        g.observe(1_000, 100);
        assert_eq!(g.threshold(), 0, "thin window must not arm");
        // Arm it properly in window 1...
        for i in 0..200u64 {
            g.observe(1_000 + i, 100);
        }
        g.observe(2_000, 100);
        assert_ne!(g.threshold(), 0);
        // ...then skip straight to window 9: the gap disarms the gate.
        assert!(!g.observe(9_000, 1 << 40));
        assert_eq!(g.threshold(), 0, "idle gap must disarm");
    }

    #[test]
    fn straggler_check_counts_into_metrics() {
        let m = FabricMetrics::detached();
        for i in 0..200u64 {
            m.record_straggler_check(i, 100);
        }
        m.record_straggler_check(STRAGGLER_WINDOW_NS, 100);
        assert_eq!(m.stragglers.get(), 0);
        m.record_straggler_check(STRAGGLER_WINDOW_NS + 1, 1 << 30);
        assert_eq!(m.stragglers.get(), 1);
    }

    #[test]
    fn gauge_shift_moves_by_delta_only() {
        let g = telemetry::Gauge::standalone();
        g.observe_set(10);
        gauge_shift(&g, 3, 7);
        // Standalone gauges bypass the enabled() gate only via observe_*;
        // gauge_shift goes through add/sub, so force telemetry on.
        telemetry::set_enabled(true);
        gauge_shift(&g, 3, 7);
        assert_eq!(g.get(), 14);
        gauge_shift(&g, 7, 2);
        assert_eq!(g.get(), 9);
        gauge_shift(&g, 5, 5);
        assert_eq!(g.get(), 9);
        telemetry::set_enabled(false);
    }

    #[test]
    fn metrics_mirror_counts() {
        let m = FabricMetrics::detached();
        m.record_message(4096, true, 2, 3, 1500.9);
        assert_eq!(m.messages.get(), 1);
        assert_eq!(m.bytes.get(), 4096);
        assert_eq!(m.rendezvous.get(), 1);
        assert_eq!(m.eager.get(), 0);
        assert_eq!(m.fragments.get(), 2);
        assert_eq!(m.regions.get(), 3);
        assert_eq!(m.wire_ns.get(), 1500);
        assert_eq!(m.msg_size.summary().count, 1);
    }
}
