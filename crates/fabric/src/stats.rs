//! Fabric traffic counters.
//!
//! Tests (and EXPERIMENTS.md claims) rely on counting *how* data moved:
//! e.g. a pickle out-of-band transfer issues one message per buffer while
//! the custom-datatype path folds everything into a single message, and
//! eager messages pay a bounce-buffer copy that rendezvous avoids.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing all traffic a [`Fabric`](crate::Fabric)
/// has carried.
#[derive(Debug, Default)]
pub struct FabricStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    eager: AtomicU64,
    rendezvous: AtomicU64,
    fragments: AtomicU64,
    regions: AtomicU64,
    unexpected: AtomicU64,
}

/// A copied-out, plain view of [`FabricStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsView {
    /// Completed messages.
    pub messages: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
    /// Messages carried with the eager protocol.
    pub eager: u64,
    /// Messages carried with the rendezvous protocol.
    pub rendezvous: u64,
    /// Pipeline fragments transferred.
    pub fragments: u64,
    /// Scatter/gather entries transferred.
    pub regions: u64,
    /// Messages that arrived before a matching receive was posted.
    pub unexpected: u64,
}

impl FabricStats {
    pub(crate) fn record_message(
        &self,
        bytes: usize,
        rendezvous: bool,
        fragments: usize,
        regions: usize,
    ) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if rendezvous {
            self.rendezvous.fetch_add(1, Ordering::Relaxed);
        } else {
            self.eager.fetch_add(1, Ordering::Relaxed);
        }
        self.fragments
            .fetch_add(fragments as u64, Ordering::Relaxed);
        self.regions.fetch_add(regions as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_unexpected(&self) {
        self.unexpected.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current counter values.
    pub fn view(&self) -> StatsView {
        StatsView {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            eager: self.eager.load(Ordering::Relaxed),
            rendezvous: self.rendezvous.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            unexpected: self.unexpected.load(Ordering::Relaxed),
        }
    }
}

impl StatsView {
    /// Difference between two views taken from the same fabric.
    pub fn since(&self, earlier: &StatsView) -> StatsView {
        StatsView {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            eager: self.eager - earlier.eager,
            rendezvous: self.rendezvous - earlier.rendezvous,
            fragments: self.fragments - earlier.fragments,
            regions: self.regions - earlier.regions,
            unexpected: self.unexpected - earlier.unexpected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_views() {
        let s = FabricStats::default();
        s.record_message(1024, false, 1, 1);
        s.record_message(1 << 20, true, 16, 3);
        s.record_unexpected();
        let v = s.view();
        assert_eq!(v.messages, 2);
        assert_eq!(v.bytes, 1024 + (1 << 20));
        assert_eq!(v.eager, 1);
        assert_eq!(v.rendezvous, 1);
        assert_eq!(v.fragments, 17);
        assert_eq!(v.regions, 4);
        assert_eq!(v.unexpected, 1);
    }

    #[test]
    fn since_subtracts() {
        let s = FabricStats::default();
        s.record_message(10, false, 1, 1);
        let a = s.view();
        s.record_message(20, false, 1, 1);
        let b = s.view();
        let d = b.since(&a);
        assert_eq!(d.messages, 1);
        assert_eq!(d.bytes, 20);
    }
}
