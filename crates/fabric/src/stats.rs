//! Fabric traffic counters.
//!
//! Tests (and EXPERIMENTS.md claims) rely on counting *how* data moved:
//! e.g. a pickle out-of-band transfer issues one message per buffer while
//! the custom-datatype path folds everything into a single message, and
//! eager messages pay a bounce-buffer copy that rendezvous avoids.
//!
//! [`FabricStats`] keeps the per-fabric counters the public API exposes;
//! the crate-private `FabricMetrics` mirrors the same traffic into the process-global
//! `mpicd-obs` registry (plus phase-time counters fed by spans) so the
//! benchmark harness can take registry snapshots without holding a fabric
//! handle.

use mpicd_obs::metrics::{global, Counter, Histogram};
use mpicd_obs::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counters describing all traffic a [`Fabric`](crate::Fabric)
/// has carried.
#[derive(Debug, Default)]
pub struct FabricStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    eager: AtomicU64,
    rendezvous: AtomicU64,
    fragments: AtomicU64,
    regions: AtomicU64,
    unexpected: AtomicU64,
    pipelined: AtomicU64,
    match_exact: AtomicU64,
    match_wildcard: AtomicU64,
    match_drained: AtomicU64,
}

/// A copied-out, plain view of [`FabricStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsView {
    /// Completed messages.
    pub messages: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
    /// Messages carried with the eager protocol.
    pub eager: u64,
    /// Messages carried with the rendezvous protocol.
    pub rendezvous: u64,
    /// Pipeline fragments transferred.
    pub fragments: u64,
    /// Scatter/gather entries transferred.
    pub regions: u64,
    /// Messages that arrived before a matching receive was posted.
    pub unexpected: u64,
    /// Messages whose payload moved through the parallel fragment pipeline
    /// (zero whenever `MPICD_PIPELINE=0` or the transfer was ineligible).
    pub pipelined: u64,
    /// Send/recv pairings found through the O(1) exact-match hash path.
    pub match_exact: u64,
    /// Pairings that required the ordered wildcard sideline (ANY_SOURCE /
    /// ANY_TAG on either side of the match).
    pub match_wildcard: u64,
    /// Cancelled or already-completed queue entries lazily drained while
    /// matching (each entry counted once).
    pub match_drained: u64,
}

impl FabricStats {
    pub(crate) fn record_message(
        &self,
        bytes: usize,
        rendezvous: bool,
        fragments: usize,
        regions: usize,
    ) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if rendezvous {
            self.rendezvous.fetch_add(1, Ordering::Relaxed);
        } else {
            self.eager.fetch_add(1, Ordering::Relaxed);
        }
        self.fragments
            .fetch_add(fragments as u64, Ordering::Relaxed);
        self.regions.fetch_add(regions as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_unexpected(&self) {
        self.unexpected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_pipelined(&self) {
        self.pipelined.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_match(&self, wildcard: bool) {
        if wildcard {
            self.match_wildcard.fetch_add(1, Ordering::Relaxed);
        } else {
            self.match_exact.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_drained(&self, n: u64) {
        if n > 0 {
            self.match_drained.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Copy out the current counter values.
    pub fn view(&self) -> StatsView {
        StatsView {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            eager: self.eager.load(Ordering::Relaxed),
            rendezvous: self.rendezvous.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            unexpected: self.unexpected.load(Ordering::Relaxed),
            pipelined: self.pipelined.load(Ordering::Relaxed),
            match_exact: self.match_exact.load(Ordering::Relaxed),
            match_wildcard: self.match_wildcard.load(Ordering::Relaxed),
            match_drained: self.match_drained.load(Ordering::Relaxed),
        }
    }
}

impl StatsView {
    /// Difference between two views. Saturating: callers sometimes compare
    /// views from different fabrics or across a counter reset, and a
    /// nonsensical ordering must degrade to zero, not panic in debug builds.
    pub fn since(&self, earlier: &StatsView) -> StatsView {
        StatsView {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            eager: self.eager.saturating_sub(earlier.eager),
            rendezvous: self.rendezvous.saturating_sub(earlier.rendezvous),
            fragments: self.fragments.saturating_sub(earlier.fragments),
            regions: self.regions.saturating_sub(earlier.regions),
            unexpected: self.unexpected.saturating_sub(earlier.unexpected),
            pipelined: self.pipelined.saturating_sub(earlier.pipelined),
            match_exact: self.match_exact.saturating_sub(earlier.match_exact),
            match_wildcard: self.match_wildcard.saturating_sub(earlier.match_wildcard),
            match_drained: self.match_drained.saturating_sub(earlier.match_drained),
        }
    }
}

/// Handles into the process-global `mpicd-obs` registry for everything the
/// fabric reports. Created once per [`Fabric`](crate::Fabric); all fabrics
/// share the same underlying registry entries (get-or-create by name).
///
/// The `*_ns` phase counters are fed by `span_acc` guards and therefore
/// only advance while tracing is enabled; the traffic counters and the
/// modeled `wire_ns` are always on (same cost class as [`FabricStats`]).
#[derive(Debug, Clone)]
pub(crate) struct FabricMetrics {
    pub messages: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub eager: Arc<Counter>,
    pub rendezvous: Arc<Counter>,
    pub fragments: Arc<Counter>,
    pub regions: Arc<Counter>,
    pub unexpected: Arc<Counter>,
    /// Modeled wire time (always on).
    pub wire_ns: Arc<Counter>,
    /// Wall time spent inside pack callbacks (tracing only).
    pub pack_ns: Arc<Counter>,
    /// Wall time spent inside unpack callbacks (tracing only).
    pub unpack_ns: Arc<Counter>,
    /// Bytes copied into eager bounce buffers (the copy the custom path avoids).
    pub copy_bytes: Arc<Counter>,
    /// Message-size distribution.
    pub msg_size: Arc<Histogram>,
    /// Transfers executed by the parallel fragment pipeline (always on).
    pub pipeline_transfers: Arc<Counter>,
    /// Fragments executed by the parallel engine (always on).
    pub pipeline_frags: Arc<Counter>,
    /// Worker threads spawned by pipeline pools (recorded once per pool).
    pub pipeline_threads: Arc<Counter>,
    /// Wall time inside the parallel engine, submit to completion
    /// (tracing only, fed by a `span_acc` guard like `pack_ns`).
    pub pipeline_ns: Arc<Counter>,
    /// Pairings found through the exact-match hash path (always on).
    pub match_exact: Arc<Counter>,
    /// Pairings that needed the wildcard sideline (always on).
    pub match_wildcard: Arc<Counter>,
    /// Dead queue entries lazily drained while matching (always on).
    pub match_drained: Arc<Counter>,
    /// Continuous telemetry (`MPICD_TELEMETRY=1`): message traffic as a
    /// windowed time series (count = messages, sum = payload bytes).
    pub tele_traffic: Arc<telemetry::Series>,
    /// Continuous telemetry: modeled per-message wire latency sketch.
    pub tele_wire_ns: Arc<telemetry::Sketch>,
    /// Continuous telemetry: match-to-complete wall time per transfer.
    pub tele_active_ns: Arc<telemetry::Sketch>,
    /// Continuous telemetry: match events as a windowed series (count =
    /// pairings; rate over a window is matches/sec).
    pub tele_match: Arc<telemetry::Series>,
}

impl FabricMetrics {
    /// Handles into the process-global registry under `fabric.*` names.
    pub(crate) fn from_global() -> Self {
        let r = global();
        Self {
            messages: r.counter("fabric.messages"),
            bytes: r.counter("fabric.bytes"),
            eager: r.counter("fabric.eager"),
            rendezvous: r.counter("fabric.rendezvous"),
            fragments: r.counter("fabric.fragments"),
            regions: r.counter("fabric.regions"),
            unexpected: r.counter("fabric.unexpected"),
            wire_ns: r.counter("fabric.wire_ns"),
            pack_ns: r.counter("fabric.pack_ns"),
            unpack_ns: r.counter("fabric.unpack_ns"),
            copy_bytes: r.counter("fabric.copy_bytes"),
            msg_size: r.histogram("fabric.msg_size"),
            pipeline_transfers: r.counter("fabric.pipeline.transfers"),
            pipeline_frags: r.counter("fabric.pipeline.frags"),
            pipeline_threads: r.counter("fabric.pipeline.threads"),
            pipeline_ns: r.counter("fabric.pipeline.ns"),
            match_exact: r.counter("fabric.match.exact"),
            match_wildcard: r.counter("fabric.match.wildcard"),
            match_drained: r.counter("fabric.match.drained"),
            tele_traffic: telemetry::series("fabric.traffic"),
            tele_wire_ns: telemetry::sketch("fabric.wire_latency_ns"),
            tele_active_ns: telemetry::sketch("fabric.transfer_active_ns"),
            tele_match: telemetry::series("fabric.match.rate"),
        }
    }

    /// Standalone handles not registered anywhere — for unit tests that
    /// must not see cross-test traffic through the global registry.
    #[cfg(test)]
    pub(crate) fn detached() -> Self {
        Self {
            messages: Arc::new(Counter::new()),
            bytes: Arc::new(Counter::new()),
            eager: Arc::new(Counter::new()),
            rendezvous: Arc::new(Counter::new()),
            fragments: Arc::new(Counter::new()),
            regions: Arc::new(Counter::new()),
            unexpected: Arc::new(Counter::new()),
            wire_ns: Arc::new(Counter::new()),
            pack_ns: Arc::new(Counter::new()),
            unpack_ns: Arc::new(Counter::new()),
            copy_bytes: Arc::new(Counter::new()),
            msg_size: Arc::new(Histogram::new()),
            pipeline_transfers: Arc::new(Counter::new()),
            pipeline_frags: Arc::new(Counter::new()),
            pipeline_threads: Arc::new(Counter::new()),
            pipeline_ns: Arc::new(Counter::new()),
            match_exact: Arc::new(Counter::new()),
            match_wildcard: Arc::new(Counter::new()),
            match_drained: Arc::new(Counter::new()),
            tele_traffic: Arc::new(telemetry::Series::standalone(1_000_000_000)),
            tele_wire_ns: Arc::new(telemetry::Sketch::standalone()),
            tele_active_ns: Arc::new(telemetry::Sketch::standalone()),
            tele_match: Arc::new(telemetry::Series::standalone(1_000_000_000)),
        }
    }

    /// Mirror of [`FabricStats::record_message`], plus modeled wire time
    /// and the message-size histogram.
    pub(crate) fn record_message(
        &self,
        bytes: usize,
        rendezvous: bool,
        fragments: usize,
        regions: usize,
        wire_ns: f64,
    ) {
        self.messages.inc();
        self.bytes.add(bytes as u64);
        if rendezvous {
            self.rendezvous.inc();
        } else {
            self.eager.inc();
        }
        self.fragments.add(fragments as u64);
        self.regions.add(regions as u64);
        self.wire_ns.add(wire_ns as u64);
        self.msg_size.record(bytes as u64);
        // Continuous telemetry mirror; each call is one relaxed load when
        // MPICD_TELEMETRY is off.
        self.tele_traffic.add(bytes as u64);
        self.tele_wire_ns.record(wire_ns as u64);
    }

    /// Mirror of [`FabricStats::record_match`] into the global registry and
    /// the `fabric.match.rate` telemetry series.
    pub(crate) fn record_match(&self, wildcard: bool) {
        if wildcard {
            self.match_wildcard.inc();
        } else {
            self.match_exact.inc();
        }
        self.tele_match.add(1);
    }

    /// Mirror of [`FabricStats::record_drained`].
    pub(crate) fn record_drained(&self, n: u64) {
        if n > 0 {
            self.match_drained.add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_views() {
        let s = FabricStats::default();
        s.record_message(1024, false, 1, 1);
        s.record_message(1 << 20, true, 16, 3);
        s.record_unexpected();
        let v = s.view();
        assert_eq!(v.messages, 2);
        assert_eq!(v.bytes, 1024 + (1 << 20));
        assert_eq!(v.eager, 1);
        assert_eq!(v.rendezvous, 1);
        assert_eq!(v.fragments, 17);
        assert_eq!(v.regions, 4);
        assert_eq!(v.unexpected, 1);
    }

    #[test]
    fn since_subtracts() {
        let s = FabricStats::default();
        s.record_message(10, false, 1, 1);
        let a = s.view();
        s.record_message(20, false, 1, 1);
        let b = s.view();
        let d = b.since(&a);
        assert_eq!(d.messages, 1);
        assert_eq!(d.bytes, 20);
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        // Regression: `since` across a reset (or with views from different
        // fabrics) used plain subtraction and panicked in debug builds.
        let busy = StatsView {
            messages: 5,
            bytes: 100,
            eager: 3,
            rendezvous: 2,
            fragments: 7,
            regions: 9,
            unexpected: 1,
            pipelined: 4,
            match_exact: 6,
            match_wildcard: 2,
            match_drained: 3,
        };
        let fresh = StatsView::default();
        let d = fresh.since(&busy);
        assert_eq!(d, StatsView::default(), "negative deltas clamp to zero");
        // The sane direction still subtracts exactly.
        assert_eq!(busy.since(&fresh), busy);
    }

    #[test]
    fn match_counters_split_exact_and_wildcard() {
        let s = FabricStats::default();
        s.record_match(false);
        s.record_match(false);
        s.record_match(true);
        s.record_drained(5);
        s.record_drained(0);
        let v = s.view();
        assert_eq!(v.match_exact, 2);
        assert_eq!(v.match_wildcard, 1);
        assert_eq!(v.match_drained, 5);

        let m = FabricMetrics::detached();
        m.record_match(true);
        m.record_drained(7);
        assert_eq!(m.match_wildcard.get(), 1);
        assert_eq!(m.match_exact.get(), 0);
        assert_eq!(m.match_drained.get(), 7);
    }

    #[test]
    fn metrics_mirror_counts() {
        let m = FabricMetrics::detached();
        m.record_message(4096, true, 2, 3, 1500.9);
        assert_eq!(m.messages.get(), 1);
        assert_eq!(m.bytes.get(), 4096);
        assert_eq!(m.rendezvous.get(), 1);
        assert_eq!(m.eager.get(), 0);
        assert_eq!(m.fragments.get(), 2);
        assert_eq!(m.regions.get(), 3);
        assert_eq!(m.wire_ns.get(), 1500);
        assert_eq!(m.msg_size.summary().count, 1);
    }
}
