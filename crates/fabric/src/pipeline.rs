//! The parallel fragment pipeline — concurrent pack/copy/unpack of a
//! matched transfer's byte stream.
//!
//! PR 2 made every plan-backed packer *offset-addressed*: any fragment of
//! the packed stream can be produced or consumed independently. This module
//! exploits that. When a matched transfer's source and destination are both
//! random-access (every callback segment exposes a
//! [`RandomAccessPacker`]/[`RandomAccessUnpacker`] view) and the sender did
//! not demand `inorder` delivery, the stream is split at the wire model's
//! fragment size and the fragments are executed concurrently by a
//! persistent, lazily-spawned worker pool — the CPU-side analogue of the
//! overlapped fragment pipelining UCX does on the wire (paper §IV, Fig. 5).
//!
//! Design points:
//!
//! * **Serial fallback.** The pool is only consulted for eligible
//!   transfers; everything else (streaming callbacks, `inorder` senders,
//!   single-fragment payloads, `MPICD_PIPELINE=0`) runs the untouched
//!   serial [`copy_stream`](crate::transfer) engine.
//! * **Bounded scratch ring.** Packer→unpacker fragments stage through a
//!   pool of recycled per-fragment buffers; at most
//!   [`PipelineConfig`](crate::config::PipelineConfig)::`depth` are ever
//!   checked out, bounding memory regardless of transfer size.
//! * **First error wins.** Workers never stop mid-transfer; every callback
//!   error is recorded with its stream position and the *lowest-position*
//!   error is surfaced — the same error the serial engine's in-order walk
//!   would have returned first (matching the paper's error-return
//!   semantics). Which later callbacks also ran is unspecified on error.
//! * **The posting thread participates.** A pool configured with
//!   `threads = 1` spawns no workers at all: the posting thread drains the
//!   fragment queue itself, so the parallel machinery can be benchmarked
//!   head-to-head against the serial engine with no thread handoff cost.

// Audited unsafe: lifetime-erased job sharing (see JobRef safety argument); every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::config::PipelineConfig;
use crate::error::{FabricError, FabricResult};
use crate::payload::{IovEntry, IovEntryMut, RandomAccessPacker, RandomAccessUnpacker};
use crate::stats::FabricMetrics;
use crate::transfer::{DstSeg, SrcSeg};
use mpicd_obs::flight::{self, EventKind};
use mpicd_obs::sync::{Condvar, Mutex};
use mpicd_obs::telemetry;
use mpicd_obs::trace::span_acc;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

// ---- parallel-capable segment views ----------------------------------------

/// A source segment admitted to the parallel engine.
pub(crate) enum ParSrc<'a> {
    /// Position-addressed memory — always eligible.
    Mem(IovEntry),
    /// A packer that exposed its random-access view.
    Packer {
        packer: &'a dyn RandomAccessPacker,
        len: usize,
    },
}

/// A destination segment admitted to the parallel engine.
pub(crate) enum ParDst<'a> {
    Mem(IovEntryMut),
    Unpacker {
        unpacker: &'a dyn RandomAccessUnpacker,
        len: usize,
    },
}

/// Try to build parallel views of a matched transfer's segment lists.
///
/// Returns `None` — routing the transfer to the serial engine — unless
/// *every* callback segment is random-access. Memory segments always
/// qualify.
pub(crate) fn parallel_view<'a>(
    src_segs: &'a [SrcSeg<'_>],
    dst_segs: &'a [DstSeg<'_>],
) -> Option<(Vec<ParSrc<'a>>, Vec<ParDst<'a>>)> {
    let src = src_segs
        .iter()
        .map(|s| match s {
            SrcSeg::Mem(e) => Some(ParSrc::Mem(*e)),
            SrcSeg::Packer { packer, len } => packer
                .random_access()
                .map(|packer| ParSrc::Packer { packer, len: *len }),
        })
        .collect::<Option<Vec<_>>>()?;
    let dst = dst_segs
        .iter()
        .map(|d| match d {
            DstSeg::Mem(e) => Some(ParDst::Mem(*e)),
            DstSeg::Unpacker { unpacker, len } => {
                unpacker.random_access().map(|unpacker| ParDst::Unpacker {
                    unpacker,
                    len: *len,
                })
            }
        })
        .collect::<Option<Vec<_>>>()?;
    Some((src, dst))
}

fn src_len(s: &ParSrc<'_>) -> usize {
    match s {
        ParSrc::Mem(e) => e.len,
        ParSrc::Packer { len, .. } => *len,
    }
}

fn dst_len(d: &ParDst<'_>) -> usize {
    match d {
        ParDst::Mem(e) => e.len,
        ParDst::Unpacker { len, .. } => *len,
    }
}

// ---- bounded scratch ring ---------------------------------------------------

/// Bounded ring of pooled per-fragment staging buffers. Checkout blocks
/// when `depth` buffers are already out; buffers are recycled for the
/// lifetime of the pool.
struct ScratchRing {
    state: Mutex<RingState>,
    returned: Condvar,
    /// Level gauge (`fabric.scratch_free`): slots still available for
    /// checkout. A sustained low reading means fragments are stalling on
    /// staging buffers (raise `MPICD_PIPELINE_DEPTH`).
    gauge: Arc<telemetry::Gauge>,
}

struct RingState {
    free: Vec<Vec<u8>>,
    issued: usize,
    depth: usize,
}

impl RingState {
    /// Slots a checkout could take right now without blocking.
    fn free_slots(&self) -> u64 {
        (self.depth - self.issued + self.free.len()) as u64
    }
}

impl ScratchRing {
    fn new(depth: usize, gauge: Arc<telemetry::Gauge>) -> Self {
        let depth = depth.max(1);
        // Structural baseline, recorded even before telemetry is enabled
        // so the gauge never reads 0-free on an idle ring.
        gauge.observe_set(depth as u64);
        Self {
            state: Mutex::new(RingState {
                free: Vec::new(),
                issued: 0,
                depth,
            }),
            returned: Condvar::new(),
            gauge,
        }
    }

    fn checkout(&self) -> Vec<u8> {
        let mut st = self.state.lock();
        loop {
            if let Some(b) = st.free.pop() {
                self.gauge.set(st.free_slots());
                return b;
            }
            if st.issued < st.depth {
                st.issued += 1;
                self.gauge.set(st.free_slots());
                return Vec::new();
            }
            st = self.returned.wait(st);
        }
    }

    fn checkin(&self, buf: Vec<u8>) {
        let mut st = self.state.lock();
        st.free.push(buf);
        self.gauge.set(st.free_slots());
        drop(st);
        self.returned.notify_one();
    }
}

// ---- one in-flight transfer -------------------------------------------------

/// Shared state of one pipelined transfer, stack-allocated by the posting
/// thread, which blocks until `remaining` hits zero. Workers reach it
/// through a lifetime-erased pointer that provably never outlives it (see
/// the safety argument on [`JobRef`]).
struct JobShared<'a> {
    frag: usize,
    total: usize,
    src: Vec<ParSrc<'a>>,
    /// Stream offset where each source segment starts; last entry = total.
    src_prefix: Vec<usize>,
    dst: Vec<ParDst<'a>>,
    dst_prefix: Vec<usize>,
    scratch: &'a ScratchRing,
    metrics: &'a FabricMetrics,
    /// Flight-recorder transfer id (0 = not recording).
    fid: u64,
    /// Merged Lamport clock of the transfer, stamped on fragment events.
    lc: u64,
    /// Lowest-stream-position callback error (position, error).
    error: Mutex<Option<(usize, FabricError)>>,
    /// Fragments not yet finished; guarded decrement, last one notifies.
    remaining: Mutex<usize>,
    done: Condvar,
}

/// Record `(pos, e)` into the job's error slot unless an error at an
/// equal-or-lower stream position is already there: concurrent fragments
/// can fail in any order, but the transfer reports the error closest to
/// the start of the stream, matching what the serial engine would hit
/// first.
fn record_error(slot: &Mutex<Option<(usize, FabricError)>>, pos: usize, e: FabricError) {
    let mut g = slot.lock();
    match &*g {
        Some((p, _)) if *p <= pos => {}
        _ => *g = Some((pos, e)),
    }
}

/// Retire one fragment: decrement the remaining count under its mutex and
/// notify the posting thread on the last one. The decrement must be the
/// final touch of job state (see [`JobRef`]).
fn complete_fragment(remaining: &Mutex<usize>, done: &Condvar) {
    let mut g = remaining.lock();
    *g -= 1;
    if *g == 0 {
        done.notify_all();
    }
}

impl JobShared<'_> {
    /// Execute fragment `idx`, record any error, and signal completion.
    /// The completion decrement is the **last** touch of job state: once
    /// the posting thread observes `remaining == 0` (which requires this
    /// mutex), no worker dereferences the job again.
    fn exec_fragment(&self, idx: usize) {
        let lo = idx * self.frag;
        let hi = self.total.min(lo + self.frag);
        if let Err((pos, e)) = self.run_range(lo, hi) {
            record_error(&self.error, pos, e);
        }
        complete_fragment(&self.remaining, &self.done);
    }

    /// Move stream bytes `[lo, hi)`, walking the (src × dst) segment
    /// intersections exactly like the serial engine but addressed
    /// absolutely. Errors carry the stream position they occurred at.
    fn run_range(&self, lo: usize, hi: usize) -> Result<(), (usize, FabricError)> {
        let mut pos = lo;
        let mut si = self.src_prefix.partition_point(|&p| p <= pos) - 1;
        let mut di = self.dst_prefix.partition_point(|&p| p <= pos) - 1;
        while pos < hi {
            while self.src_prefix[si + 1] <= pos {
                si += 1;
            }
            while self.dst_prefix[di + 1] <= pos {
                di += 1;
            }
            let s_off = pos - self.src_prefix[si];
            let d_off = pos - self.dst_prefix[di];
            let n = (self.src_prefix[si + 1] - pos)
                .min(self.dst_prefix[di + 1] - pos)
                .min(hi - pos);
            match (&self.src[si], &self.dst[di]) {
                (ParSrc::Mem(s), ParDst::Mem(d)) => {
                    // SAFETY: post contracts guarantee both regions are live
                    // and non-overlapping; concurrent fragments touch
                    // disjoint ranges.
                    unsafe {
                        std::ptr::copy_nonoverlapping(s.ptr.add(s_off), d.ptr.add(d_off), n);
                    }
                }
                (ParSrc::Mem(s), ParDst::Unpacker { unpacker, .. }) => {
                    // SAFETY: as above.
                    let bytes = unsafe { std::slice::from_raw_parts(s.ptr.add(s_off), n) };
                    let t0 = flight::clock(self.fid);
                    {
                        let _sp = span_acc("unpack", "fabric", n as u64, &self.metrics.unpack_ns);
                        unpacker
                            .unpack_at(d_off, bytes)
                            .map_err(|c| (pos, FabricError::UnpackFailed(c)))?;
                    }
                    flight::record_frag(
                        EventKind::FragUnpacked,
                        self.fid,
                        t0,
                        n as u64,
                        d_off as u64,
                        self.lc,
                    );
                }
                (ParSrc::Packer { packer, len }, ParDst::Mem(d)) => {
                    // SAFETY: `n` stays within the destination region.
                    let out = unsafe { std::slice::from_raw_parts_mut(d.ptr.add(d_off), n) };
                    let t0 = flight::clock(self.fid);
                    self.pack_fill(*packer, s_off, out, *len)
                        .map_err(|(rel, e)| (pos + rel, e))?;
                    flight::record_frag(
                        EventKind::FragPacked,
                        self.fid,
                        t0,
                        n as u64,
                        s_off as u64,
                        self.lc,
                    );
                }
                (ParSrc::Packer { packer, len }, ParDst::Unpacker { unpacker, .. }) => {
                    let mut buf = self.scratch.checkout();
                    buf.resize(n, 0);
                    let t0 = flight::clock(self.fid);
                    let r = self
                        .pack_fill(*packer, s_off, &mut buf[..n], *len)
                        .map_err(|(rel, e)| (pos + rel, e))
                        .and_then(|()| {
                            flight::record_frag(
                                EventKind::FragPacked,
                                self.fid,
                                t0,
                                n as u64,
                                s_off as u64,
                                self.lc,
                            );
                            let t1 = flight::clock(self.fid);
                            {
                                let _sp =
                                    span_acc("unpack", "fabric", n as u64, &self.metrics.unpack_ns);
                                unpacker
                                    .unpack_at(d_off, &buf[..n])
                                    .map_err(|c| (pos, FabricError::UnpackFailed(c)))?;
                            }
                            flight::record_frag(
                                EventKind::FragUnpacked,
                                self.fid,
                                t1,
                                n as u64,
                                d_off as u64,
                                self.lc,
                            );
                            Ok(())
                        });
                    self.scratch.checkin(buf);
                    r?;
                }
            }
            pos += n;
        }
        Ok(())
    }

    /// Fill `out` completely from `packer` starting at segment-local
    /// `offset`, honoring the partial-fill contract. Errors carry the
    /// byte count already filled (relative position).
    fn pack_fill(
        &self,
        packer: &dyn RandomAccessPacker,
        offset: usize,
        out: &mut [u8],
        seg_len: usize,
    ) -> Result<(), (usize, FabricError)> {
        let mut filled = 0usize;
        while filled < out.len() {
            let used = {
                let _sp = span_acc(
                    "pack",
                    "fabric",
                    (out.len() - filled) as u64,
                    &self.metrics.pack_ns,
                );
                packer.pack_at(offset + filled, &mut out[filled..])
            }
            .map_err(|c| (filled, FabricError::PackFailed(c)))?;
            let used = used.min(out.len() - filled);
            if used == 0 {
                return Err((
                    filled,
                    FabricError::PackStalled {
                        offset: offset + filled,
                        remaining: seg_len - (offset + filled),
                    },
                ));
            }
            filled += used;
        }
        Ok(())
    }
}

/// Lifetime-erased pointer to a [`JobShared`] on a posting thread's stack.
///
/// # Safety
/// Sound because of three invariants, all enforced in this module:
/// 1. a `JobRef` escapes the queue lock only paired with a claimed
///    fragment index, and the queue entry is removed once every fragment
///    is claimed — no stale reference survives in the queue;
/// 2. after executing its fragment a worker's final access is the
///    `remaining` decrement, and the posting thread cannot observe
///    `remaining == 0` (it must acquire the same mutex) until that access
///    completes;
/// 3. the posting thread does not return — and the `JobShared` does not
///    drop — until it has observed `remaining == 0`.
#[derive(Clone, Copy)]
struct JobRef(*const JobShared<'static>);

// SAFETY: see the invariants above; everything a job references is Sync
// (random-access views) or raw memory covered by the post contracts.
unsafe impl Send for JobRef {}

// ---- the worker pool --------------------------------------------------------

struct QueuedJob {
    job: JobRef,
    next: usize,
    frags: usize,
}

struct PoolQueue {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    /// Level gauge (`fabric.pipeline.queue`): jobs with unclaimed
    /// fragments. Updated at the push and pop sites, under the queue lock.
    depth_gauge: Arc<telemetry::Gauge>,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work: Condvar,
}

/// Claim the next unclaimed fragment, removing fully-claimed jobs from the
/// queue. Must be called with the queue lock held.
fn claim(q: &mut PoolQueue) -> Option<(JobRef, usize)> {
    let qj = q.jobs.front_mut()?;
    let idx = qj.next;
    let job = qj.job;
    qj.next += 1;
    if qj.next == qj.frags {
        q.jobs.pop_front();
        q.depth_gauge.set(q.jobs.len() as u64);
    }
    Some((job, idx))
}

/// The persistent worker pool plus its scratch ring. One per fabric,
/// spawned lazily on the first eligible transfer and joined when the
/// fabric drops.
pub(crate) struct PipelinePool {
    shared: Arc<PoolShared>,
    scratch: ScratchRing,
    workers: Vec<JoinHandle<()>>,
}

impl PipelinePool {
    /// Spawn `cfg.threads - 1` workers (the posting thread is the last
    /// participant) and record the pool size in the obs registry.
    pub(crate) fn spawn(cfg: PipelineConfig, metrics: &FabricMetrics) -> Self {
        let threads = cfg.threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
                depth_gauge: Arc::clone(&metrics.g_pipeline_queue),
            }),
            work: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mpicd-pipeline-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pipeline worker")
            })
            .collect();
        metrics.pipeline_threads.add(threads as u64);
        Self {
            shared,
            scratch: ScratchRing::new(cfg.depth, Arc::clone(&metrics.g_scratch_free)),
            workers,
        }
    }

    /// Total concurrency, counting the posting thread.
    #[cfg(test)]
    pub(crate) fn threads(&self) -> usize {
        self.workers.len() + 1
    }
}

impl Drop for PipelinePool {
    fn drop(&mut self) {
        self.shared.queue.lock().shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let claimed = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(c) = claim(&mut q) {
                    break Some(c);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.work.wait(q);
            }
        };
        match claimed {
            // SAFETY: JobRef invariants (documented on the type).
            Some((job, idx)) => unsafe { (*job.0).exec_fragment(idx) },
            None => return,
        }
    }
}

/// Run one eligible transfer through the pool. Blocks (while participating
/// in the fragment work) until every fragment completes; returns the bytes
/// moved or the lowest-stream-position callback error.
///
/// `fid` is the send-side flight-recorder transfer id (0 = no recording);
/// workers emit `FragPacked`/`FragUnpacked` events against it, stamped
/// with the transfer's merged Lamport clock `lc`.
pub(crate) fn run_parallel(
    pool: &PipelinePool,
    frag_size: usize,
    src: Vec<ParSrc<'_>>,
    dst: Vec<ParDst<'_>>,
    metrics: &FabricMetrics,
    fid: u64,
    lc: u64,
) -> FabricResult<usize> {
    let total: usize = src.iter().map(src_len).sum();
    let frag = frag_size.max(1);
    let frags = total.div_ceil(frag);
    if frags == 0 {
        return Ok(0);
    }

    let mut src_prefix = Vec::with_capacity(src.len() + 1);
    src_prefix.push(0usize);
    for s in &src {
        src_prefix.push(src_prefix.last().unwrap() + src_len(s));
    }
    let mut dst_prefix = Vec::with_capacity(dst.len() + 1);
    dst_prefix.push(0usize);
    for d in &dst {
        dst_prefix.push(dst_prefix.last().unwrap() + dst_len(d));
    }

    let _sp = span_acc("pipeline", "fabric", total as u64, &metrics.pipeline_ns);
    metrics.pipeline_transfers.inc();
    metrics.pipeline_frags.add(frags as u64);

    let job = JobShared {
        frag,
        total,
        src,
        src_prefix,
        dst,
        dst_prefix,
        scratch: &pool.scratch,
        metrics,
        fid,
        lc,
        error: Mutex::new(None),
        remaining: Mutex::new(frags),
        done: Condvar::new(),
    };
    // SAFETY: lifetime erasure justified by the JobRef invariants — this
    // function does not return until `remaining == 0`.
    let jref = JobRef(unsafe {
        std::mem::transmute::<*const JobShared<'_>, *const JobShared<'static>>(&job)
    });

    {
        let mut q = pool.shared.queue.lock();
        q.jobs.push_back(QueuedJob {
            job: jref,
            next: 0,
            frags,
        });
        q.depth_gauge.set(q.jobs.len() as u64);
        pool.shared.work.notify_all();
    }

    // The posting thread participates until nothing is left to claim …
    loop {
        let claimed = {
            let mut q = pool.shared.queue.lock();
            claim(&mut q)
        };
        match claimed {
            // SAFETY: JobRef invariants.
            Some((j, idx)) => unsafe { (*j.0).exec_fragment(idx) },
            None => break,
        }
    }
    // … then waits for workers still finishing claimed fragments.
    {
        let mut g = job.remaining.lock();
        while *g > 0 {
            g = job.done.wait(g);
        }
    }

    if let Some((_, e)) = job.error.lock().take() {
        return Err(e);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WireModel;
    use crate::payload::{FragmentPacker, FragmentUnpacker};
    use crate::transfer::{copy_stream, TransferScratch};
    use mpicd_obs::XorShift64Star;

    /// Offset-addressed test packer over a byte vector; optionally fails
    /// deterministically on any call whose range covers `fail_at`, and
    /// optionally emits at most `max_chunk` bytes per call (partial fills).
    struct TestPacker {
        data: Vec<u8>,
        max_chunk: usize,
        fail_at: Option<(usize, i32)>,
    }

    impl TestPacker {
        fn pack_shared(&self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
            let n = dst.len().min(self.max_chunk).min(self.data.len() - offset);
            if let Some((at, code)) = self.fail_at {
                if offset <= at && at < offset + n.max(1) {
                    return Err(code);
                }
            }
            dst[..n].copy_from_slice(&self.data[offset..offset + n]);
            Ok(n)
        }
    }

    impl FragmentPacker for TestPacker {
        fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
            self.pack_shared(offset, dst)
        }
        fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
            Some(self)
        }
    }

    impl RandomAccessPacker for TestPacker {
        fn pack_at(&self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
            self.pack_shared(offset, dst)
        }
    }

    /// Offset-addressed test unpacker scattering into a raw buffer;
    /// optionally fails on any call whose range covers `fail_at`.
    struct TestUnpacker {
        base: *mut u8,
        len: usize,
        fail_at: Option<(usize, i32)>,
    }

    // SAFETY: concurrent calls receive disjoint ranges (engine contract).
    unsafe impl Send for TestUnpacker {}
    unsafe impl Sync for TestUnpacker {}

    impl TestUnpacker {
        fn unpack_shared(&self, offset: usize, src: &[u8]) -> Result<(), i32> {
            if let Some((at, code)) = self.fail_at {
                if offset <= at && at < offset + src.len() {
                    return Err(code);
                }
            }
            assert!(offset + src.len() <= self.len);
            // SAFETY: in-bounds, disjoint ranges per the engine contract.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), self.base.add(offset), src.len());
            }
            Ok(())
        }
    }

    impl FragmentUnpacker for TestUnpacker {
        fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
            self.unpack_shared(offset, src)
        }
        fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
            Some(self)
        }
    }

    impl RandomAccessUnpacker for TestUnpacker {
        fn unpack_at(&self, offset: usize, src: &[u8]) -> Result<(), i32> {
            self.unpack_shared(offset, src)
        }
    }

    /// One randomized transfer layout, derived from the seed.
    struct Layout {
        payload: Vec<u8>,
        /// Byte lengths of the source segments; index 0 may be a packer.
        src_splits: Vec<usize>,
        src_lead_packer: bool,
        dst_splits: Vec<usize>,
        dst_lead_unpacker: bool,
        frag: usize,
        max_chunk: usize,
        pack_fail: Option<(usize, i32)>,
        unpack_fail: Option<(usize, i32)>,
    }

    fn splits(rng: &mut XorShift64Star, total: usize, parts: usize) -> Vec<usize> {
        let mut v = Vec::new();
        let mut left = total;
        for i in 0..parts {
            let take = if i + 1 == parts {
                left
            } else {
                (rng.next_u64() as usize) % (left + 1)
            };
            v.push(take);
            left -= take;
        }
        v
    }

    fn random_layout(rng: &mut XorShift64Star, with_errors: bool) -> Layout {
        let total = 1 + (rng.next_u64() as usize) % (48 * 1024);
        let payload: Vec<u8> = (0..total)
            .map(|i| (rng.next_u64() as u8).wrapping_add(i as u8))
            .collect();
        let nsrc = 1 + (rng.next_u64() as usize) % 3;
        let ndst = 1 + (rng.next_u64() as usize) % 3;
        let frag = 1 + (rng.next_u64() as usize) % (8 * 1024);
        let max_chunk = 1 + (rng.next_u64() as usize) % 4096;
        let mut fail = |p: i32| -> Option<(usize, i32)> {
            if with_errors && rng.next_u64().is_multiple_of(3) {
                Some(((rng.next_u64() as usize) % total, p))
            } else {
                None
            }
        };
        let pack_fail = fail(17);
        let unpack_fail = fail(23);
        Layout {
            src_splits: splits(rng, total, nsrc),
            src_lead_packer: rng.next_u64().is_multiple_of(2),
            dst_splits: splits(rng, total, ndst),
            dst_lead_unpacker: rng.next_u64().is_multiple_of(2),
            payload,
            frag,
            max_chunk,
            pack_fail,
            unpack_fail,
        }
    }

    /// Drive one layout through an engine (serial or parallel) and return
    /// (reassembled destination bytes, result).
    fn drive(layout: &Layout, pool: Option<&PipelinePool>) -> (Vec<u8>, FabricResult<usize>) {
        let total = layout.payload.len();
        let mut out = vec![0u8; total];
        let model = WireModel {
            frag_size: layout.frag,
            ..WireModel::zero_cost()
        };
        let metrics = FabricMetrics::detached();

        // Source segments.
        let mut packers: Vec<TestPacker> = Vec::new();
        let mut bounds = Vec::new();
        let mut at = 0usize;
        for (i, len) in layout.src_splits.iter().enumerate() {
            bounds.push((at, *len, i == 0 && layout.src_lead_packer));
            at += len;
        }
        for &(start, len, is_packer) in &bounds {
            if is_packer {
                packers.push(TestPacker {
                    data: layout.payload[start..start + len].to_vec(),
                    max_chunk: layout.max_chunk,
                    fail_at: layout.pack_fail.and_then(|(p, c)| {
                        (p >= start && p < start + len).then_some((p - start, c))
                    }),
                });
            }
        }
        let mut packer_iter = packers.iter_mut();
        let mut src_segs: Vec<SrcSeg<'_>> = Vec::new();
        for &(start, len, is_packer) in &bounds {
            if is_packer {
                src_segs.push(SrcSeg::Packer {
                    packer: packer_iter.next().unwrap(),
                    len,
                });
            } else {
                src_segs.push(SrcSeg::Mem(IovEntry {
                    ptr: layout.payload[start..].as_ptr(),
                    len,
                }));
            }
        }

        // Destination segments.
        let mut unpackers: Vec<TestUnpacker> = Vec::new();
        let mut dbounds = Vec::new();
        at = 0;
        for (i, len) in layout.dst_splits.iter().enumerate() {
            dbounds.push((at, *len, i == 0 && layout.dst_lead_unpacker));
            at += len;
        }
        for &(start, len, is_unpacker) in &dbounds {
            if is_unpacker {
                unpackers.push(TestUnpacker {
                    base: out[start..].as_mut_ptr(),
                    len,
                    fail_at: layout.unpack_fail.and_then(|(p, c)| {
                        (p >= start && p < start + len).then_some((p - start, c))
                    }),
                });
            }
        }
        let mut unpacker_iter = unpackers.iter_mut();
        let mut dst_segs: Vec<DstSeg<'_>> = Vec::new();
        for &(start, len, is_unpacker) in &dbounds {
            if is_unpacker {
                dst_segs.push(DstSeg::Unpacker {
                    unpacker: unpacker_iter.next().unwrap(),
                    len,
                });
            } else {
                dst_segs.push(DstSeg::Mem(IovEntryMut {
                    ptr: out[start..].as_mut_ptr(),
                    len,
                }));
            }
        }

        let r = match pool {
            None => copy_stream(
                &model,
                &mut src_segs,
                &mut dst_segs,
                false,
                &metrics,
                &mut TransferScratch::default(),
                0,
                0,
            ),
            Some(pool) => {
                let (ps, pd) =
                    parallel_view(&src_segs, &dst_segs).expect("test segments are random-access");
                run_parallel(pool, model.frag_size, ps, pd, &metrics, 0, 0)
            }
        };
        drop(src_segs);
        drop(dst_segs);
        (out, r)
    }

    /// The satellite property test: across random segment layouts,
    /// fragment sizes, thread counts and mid-stream callback errors, the
    /// pipelined engine is byte-identical to the serial `copy_stream` and
    /// surfaces the same first error.
    #[test]
    fn pipelined_engine_matches_serial_property() {
        let metrics = FabricMetrics::detached();
        let pools: Vec<PipelinePool> = [1usize, 2, 4]
            .iter()
            .map(|&t| PipelinePool::spawn(PipelineConfig::with_threads(t), &metrics))
            .collect();
        let mut rng = XorShift64Star::new(0x5eed_cafe_d00d_f00d);
        for case in 0..120 {
            let with_errors = case % 2 == 1;
            let layout = random_layout(&mut rng, with_errors);
            let (serial_out, serial_r) = drive(&layout, None);
            for pool in &pools {
                let (par_out, par_r) = drive(&layout, Some(pool));
                match (&serial_r, &par_r) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "case {case}: bytes moved");
                        assert_eq!(
                            par_out,
                            serial_out,
                            "case {case}, {} threads: byte identity",
                            pool.threads()
                        );
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "case {case}: same first error surfaced");
                    }
                    (a, b) => panic!(
                        "case {case}, {} threads: serial {a:?} vs parallel {b:?}",
                        pool.threads()
                    ),
                }
            }
        }
    }

    #[test]
    fn streaming_callbacks_are_rejected() {
        // A plain closure packer has no random-access view, so the
        // parallel engine must refuse the transfer (serial fallback).
        let mut closure = |_o: usize, _d: &mut [u8]| Ok(0usize);
        let src = [SrcSeg::Packer {
            packer: &mut closure,
            len: 8,
        }];
        let mut out = [0u8; 8];
        let dst = [DstSeg::Mem(IovEntryMut::from_slice(&mut out))];
        assert!(parallel_view(&src, &dst).is_none());
    }

    #[test]
    fn mem_only_transfers_are_eligible() {
        let a = [1u8, 2, 3, 4];
        let mut b = [0u8; 4];
        let src = [SrcSeg::Mem(IovEntry::from_slice(&a))];
        let dst = [DstSeg::Mem(IovEntryMut::from_slice(&mut b))];
        assert!(parallel_view(&src, &dst).is_some());
    }

    #[test]
    fn scratch_ring_is_bounded_and_recycles() {
        let ring = ScratchRing::new(2, Arc::new(telemetry::Gauge::standalone()));
        let b1 = ring.checkout();
        let b2 = ring.checkout();
        ring.checkin(b1);
        let b3 = ring.checkout(); // recycled, not newly issued
        assert_eq!(ring.state.lock().issued, 2);
        ring.checkin(b2);
        ring.checkin(b3);
    }

    #[test]
    fn pack_stall_is_reported() {
        let metrics = FabricMetrics::detached();
        let pool = PipelinePool::spawn(PipelineConfig::with_threads(2), &metrics);
        struct Stall;
        impl RandomAccessPacker for Stall {
            fn pack_at(&self, _o: usize, _d: &mut [u8]) -> Result<usize, i32> {
                Ok(0)
            }
        }
        let stall = Stall;
        let mut out = vec![0u8; 64];
        let src = vec![ParSrc::Packer {
            packer: &stall,
            len: 64,
        }];
        let dst = vec![ParDst::Mem(IovEntryMut::from_slice(&mut out))];
        let err = run_parallel(&pool, 16, src, dst, &metrics, 0, 0).unwrap_err();
        assert!(matches!(err, FabricError::PackStalled { .. }));
    }
}

/// Model-checked pipeline protocol tests. Run with
/// `RUSTFLAGS="--cfg mpicd_check" cargo test -p mpicd-fabric`; under that
/// cfg the `mpicd_obs::sync` primitives used by this module resolve to the
/// instrumented `mpicd-check` versions and these tests explore thread
/// interleavings exhaustively (bounded DFS) plus randomized PCT schedules.
#[cfg(all(test, mpicd_check))]
mod model_tests {
    use super::*;
    use mpicd_check::{model, thread as mthread};

    /// Depth-1 scratch ring shared by two threads: checkout blocks until
    /// the other side's checkin, so every interleaving must hand the single
    /// buffer across without deadlock or over-issuing.
    #[test]
    fn scratch_ring_hands_single_buffer_across_threads() {
        model(|| {
            let ring = Arc::new(ScratchRing::new(
                1,
                Arc::new(telemetry::Gauge::standalone()),
            ));
            let r = Arc::clone(&ring);
            let t = mthread::spawn(move || {
                let mut b = r.checkout();
                b.push(1);
                r.checkin(b);
            });
            let mut b = ring.checkout();
            b.push(2);
            ring.checkin(b);
            t.join();
            let st = ring.state.lock();
            assert!(st.issued <= st.depth, "ring never over-issues buffers");
            assert_eq!(
                st.free.len(),
                st.issued,
                "every issued buffer is back in the pool"
            );
        });
    }

    /// Three fragments complete in any order; two fail at different stream
    /// positions. Whatever the schedule, the posting side wakes only after
    /// the last completion and observes the lowest-position error.
    #[test]
    fn lowest_position_error_wins_and_last_fragment_notifies() {
        model(|| {
            let error = Arc::new(Mutex::new(None));
            let remaining = Arc::new(Mutex::new(3usize));
            let done = Arc::new(Condvar::new());
            let frag = |pos: Option<usize>| {
                let error = Arc::clone(&error);
                let remaining = Arc::clone(&remaining);
                let done = Arc::clone(&done);
                mthread::spawn(move || {
                    if let Some(p) = pos {
                        record_error(&error, p, FabricError::PackFailed(p as i32));
                    }
                    complete_fragment(&remaining, &done);
                })
            };
            let t1 = frag(Some(200));
            let t2 = frag(Some(100));
            // The posting thread runs the non-failing fragment inline …
            complete_fragment(&remaining, &done);
            // … then waits for the stragglers, exactly like `run_parallel`.
            {
                let mut g = remaining.lock();
                while *g > 0 {
                    g = done.wait(g);
                }
            }
            t1.join();
            t2.join();
            let (pos, err) = error.lock().take().expect("a failure was recorded");
            assert_eq!(pos, 100, "lowest-stream-position error wins");
            assert!(matches!(err, FabricError::PackFailed(100)));
        });
    }

    /// Queued fragments are claimed exactly once across competing workers,
    /// and the fully-claimed job leaves the queue.
    #[test]
    fn fragments_are_claimed_exactly_once() {
        model(|| {
            let shared = Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                    depth_gauge: Arc::new(telemetry::Gauge::standalone()),
                }),
                work: Condvar::new(),
            });
            let seen = Arc::new(Mutex::new(Vec::new()));
            {
                let mut q = shared.queue.lock();
                // The JobRef is a placeholder: this test only exercises
                // queue claiming and never dereferences it.
                q.jobs.push_back(QueuedJob {
                    job: JobRef(std::ptr::null()),
                    next: 0,
                    frags: 3,
                });
            }
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    let seen = Arc::clone(&seen);
                    mthread::spawn(move || {
                        while let Some((_, idx)) = {
                            let mut q = shared.queue.lock();
                            claim(&mut q)
                        } {
                            seen.lock().push(idx);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            let mut idxs = std::mem::take(&mut *seen.lock());
            idxs.sort_unstable();
            assert_eq!(idxs, vec![0, 1, 2], "each fragment claimed exactly once");
            assert!(
                shared.queue.lock().jobs.is_empty(),
                "fully-claimed job left the queue"
            );
        });
    }

    /// The `Drop` shutdown protocol: idle workers parked in `work.wait`
    /// must all observe the shutdown flag and exit — in every
    /// interleaving of flag-set, notify, and late arrivals (a lost-wakeup
    /// bug here would deadlock the fabric drop).
    #[test]
    fn worker_pool_shutdown_wakes_every_worker() {
        model(|| {
            let shared = Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                    depth_gauge: Arc::new(telemetry::Gauge::standalone()),
                }),
                work: Condvar::new(),
            });
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    mthread::spawn(move || worker_loop(&shared))
                })
                .collect();
            shared.queue.lock().shutdown = true;
            shared.work.notify_all();
            for w in workers {
                w.join();
            }
        });
    }
}
