//! Payload descriptors — the fabric-level equivalents of
//! `UCP_DATATYPE_CONTIG`, `UCP_DATATYPE_IOV` and `UCP_DATATYPE_GENERIC`.
//!
//! A send and a receive are matched by tag and then paired as two *byte
//! streams*: the sender's segments are read in order and scattered into the
//! receiver's segments in order (UCX iov semantics). Generic descriptors
//! additionally route their leading "packed" segment through application
//! callbacks fragment by fragment, with explicit virtual byte offsets — the
//! exact contract of the paper's `MPI_Type_custom_pack_function` /
//! `MPI_Type_custom_unpack_function` (Listing 4).

// Audited unsafe: iovec raw-pointer segment views; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use std::fmt;

/// One contiguous, readable memory region of a send payload.
///
/// Raw-pointer based, like `ucp_dt_iov_t`. The poster guarantees validity
/// and immutability for the lifetime of the operation.
#[derive(Clone, Copy)]
pub struct IovEntry {
    /// Base address of the region.
    pub ptr: *const u8,
    /// Length in bytes.
    pub len: usize,
}

// SAFETY: the fabric only dereferences entries between post and completion,
// during which the (unsafe) post contract guarantees exclusive-enough access.
unsafe impl Send for IovEntry {}

impl IovEntry {
    /// Describe an existing slice.
    pub fn from_slice(s: &[u8]) -> Self {
        Self {
            ptr: s.as_ptr(),
            len: s.len(),
        }
    }

    /// View the region as a slice.
    ///
    /// # Safety
    /// The region must still be valid and not mutated for the returned
    /// lifetime.
    pub unsafe fn as_slice<'a>(&self) -> &'a [u8] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

impl fmt::Debug for IovEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IovEntry({:p}, {} B)", self.ptr, self.len)
    }
}

/// One contiguous, writable memory region of a receive payload.
#[derive(Clone, Copy)]
pub struct IovEntryMut {
    /// Base address of the region.
    pub ptr: *mut u8,
    /// Length in bytes.
    pub len: usize,
}

// SAFETY: see `IovEntry`.
unsafe impl Send for IovEntryMut {}

impl IovEntryMut {
    /// Describe an existing mutable slice.
    pub fn from_slice(s: &mut [u8]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// View the region as a mutable slice.
    ///
    /// # Safety
    /// The region must still be valid and exclusively borrowed for the
    /// returned lifetime.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice<'a>(&self) -> &'a mut [u8] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

impl fmt::Debug for IovEntryMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IovEntryMut({:p}, {} B)", self.ptr, self.len)
    }
}

/// Shared, offset-addressed view of a packer — the *random access*
/// capability that admits a packer to the parallel fragment pipeline.
///
/// Implementations promise that `pack_at` is a pure function of `offset`:
/// any byte range of the packed stream can be produced independently, in
/// any order, from any thread (`Sync`). Plan-backed datatype engines and
/// `LoopNest` traversals satisfy this; stateful streaming callbacks do not.
pub trait RandomAccessPacker: Sync {
    /// Produce packed bytes starting at virtual byte `offset` into `dst`.
    ///
    /// Same partial-fill contract as [`FragmentPacker::pack`], but callable
    /// concurrently: the engine guarantees concurrent calls use disjoint
    /// offset ranges.
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> Result<usize, i32>;
}

/// Shared, offset-addressed view of an unpacker (see [`RandomAccessPacker`]).
///
/// Implementations additionally promise that fragments at disjoint packed
/// offsets land in disjoint memory, so concurrent delivery is race-free —
/// true of typemap-driven scatters, where each packed byte maps to exactly
/// one destination byte.
pub trait RandomAccessUnpacker: Sync {
    /// Consume `src`, whose first byte is virtual offset `offset` of the
    /// packed stream. The engine guarantees concurrent calls use disjoint
    /// offset ranges.
    fn unpack_at(&self, offset: usize, src: &[u8]) -> Result<(), i32>;
}

/// Application-side packer invoked fragment by fragment
/// (`UCP_DATATYPE_GENERIC` pack / Listing 4 `MPI_Type_custom_pack_function`).
pub trait FragmentPacker: Send {
    /// Pack bytes starting at virtual byte `offset` (within the packed
    /// stream) into `dst`.
    ///
    /// Returns the number of bytes written. The packer **may partially fill**
    /// `dst` — the engine then re-invokes it at the advanced offset with a
    /// fresh fragment, exactly as the paper allows ("The pack function may
    /// choose to only partially fill the buffer"). Returning `Err(code)`
    /// aborts the operation and surfaces
    /// [`FabricError::PackFailed`](crate::FabricError::PackFailed).
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize, i32>;

    /// Opt into the parallel fragment pipeline by exposing a shared
    /// offset-addressed view, or `None` (the default) to stay on the serial
    /// engine. Non-random-access callbacks must leave this as `None`.
    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        None
    }
}

/// Application-side unpacker invoked once per received fragment
/// (Listing 4 `MPI_Type_custom_unpack_function`).
pub trait FragmentUnpacker: Send {
    /// Consume `src`, a fragment whose first byte sits at virtual byte
    /// `offset` of the packed stream. Fragments arrive in order unless the
    /// sender cleared `inorder` *and* the wire model enables out-of-order
    /// delivery.
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32>;

    /// Opt into the parallel fragment pipeline (see
    /// [`FragmentPacker::random_access`]). Default: serial only.
    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        None
    }
}

/// Closure adapter: any `FnMut(usize, &mut [u8]) -> Result<usize, i32>` is a
/// packer.
impl<F> FragmentPacker for F
where
    F: FnMut(usize, &mut [u8]) -> Result<usize, i32> + Send,
{
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
        self(offset, dst)
    }
}

/// What a sender hands to the fabric.
pub enum SendDesc {
    /// A single contiguous buffer (`UCP_DATATYPE_CONTIG`). Small payloads go
    /// eagerly through a bounce buffer; large ones use rendezvous.
    Contig(IovEntry),
    /// A scatter/gather list (`UCP_DATATYPE_IOV`): zero-copy, pipelined, no
    /// eager bounce and no rendezvous handshake surcharge — matching the
    /// paper's observation that the custom/iov path is unaffected by the
    /// eager→rendezvous switch (Fig 7).
    Iov(Vec<IovEntry>),
    /// The paper's custom-datatype wire layout: a packed stream produced by
    /// callbacks, followed by directly-sent memory regions ("The packed data
    /// is the first element in the scatter-gather list, following which the
    /// iovec array is filled with any memory region pointers").
    Generic {
        /// Produces the packed stream, fragment by fragment.
        packer: Box<dyn FragmentPacker>,
        /// Exact total length of the packed stream (the query callback's
        /// answer).
        packed_size: usize,
        /// Memory regions appended after the packed stream.
        regions: Vec<IovEntry>,
        /// Require in-order fragment delivery to the peer's unpacker
        /// (Listing 2's `inorder` flag).
        inorder: bool,
    },
}

impl SendDesc {
    /// Total payload bytes this descriptor will put on the wire.
    pub fn total_bytes(&self) -> usize {
        match self {
            Self::Contig(e) => e.len,
            Self::Iov(v) => v.iter().map(|e| e.len).sum(),
            Self::Generic {
                packed_size,
                regions,
                ..
            } => *packed_size + regions.iter().map(|e| e.len).sum::<usize>(),
        }
    }

    /// Number of scatter/gather entries as seen by the wire.
    pub fn region_count(&self) -> usize {
        match self {
            Self::Contig(_) => 1,
            Self::Iov(v) => v.len().max(1),
            Self::Generic { regions, .. } => 1 + regions.len(),
        }
    }
}

impl fmt::Debug for SendDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Contig(e) => write!(f, "SendDesc::Contig({} B)", e.len),
            Self::Iov(v) => write!(f, "SendDesc::Iov({} entries)", v.len()),
            Self::Generic {
                packed_size,
                regions,
                inorder,
                ..
            } => write!(
                f,
                "SendDesc::Generic(packed {} B + {} regions, inorder={})",
                packed_size,
                regions.len(),
                inorder
            ),
        }
    }
}

/// What a receiver hands to the fabric.
pub enum RecvDesc {
    /// Receive into one contiguous buffer.
    Contig(IovEntryMut),
    /// Scatter the incoming byte stream across several regions.
    Iov(Vec<IovEntryMut>),
    /// Mirror of [`SendDesc::Generic`]: the first `packed_size` incoming
    /// bytes are fed to the unpacker fragment by fragment, the remainder is
    /// scattered into `regions`.
    Generic {
        /// Consumes the packed stream.
        unpacker: Box<dyn FragmentUnpacker>,
        /// Exact expected length of the packed stream. The receive side must
        /// know component lengths in advance (paper §VI "Limitations");
        /// higher layers ship them in a header.
        packed_size: usize,
        /// Destinations for the directly-sent regions.
        regions: Vec<IovEntryMut>,
    },
}

impl RecvDesc {
    /// Maximum payload bytes this descriptor can absorb.
    pub fn capacity(&self) -> usize {
        match self {
            Self::Contig(e) => e.len,
            Self::Iov(v) => v.iter().map(|e| e.len).sum(),
            Self::Generic {
                packed_size,
                regions,
                ..
            } => *packed_size + regions.iter().map(|e| e.len).sum::<usize>(),
        }
    }

    /// Number of scatter entries as seen by the wire.
    pub fn region_count(&self) -> usize {
        match self {
            Self::Contig(_) => 1,
            Self::Iov(v) => v.len().max(1),
            Self::Generic { regions, .. } => 1 + regions.len(),
        }
    }
}

impl fmt::Debug for RecvDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Contig(e) => write!(f, "RecvDesc::Contig({} B)", e.len),
            Self::Iov(v) => write!(f, "RecvDesc::Iov({} entries)", v.len()),
            Self::Generic {
                packed_size,
                regions,
                ..
            } => write!(
                f,
                "RecvDesc::Generic(packed {} B + {} regions)",
                packed_size,
                regions.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_regions() {
        let a = [1u8; 100];
        let b = [2u8; 50];
        let d = SendDesc::Iov(vec![IovEntry::from_slice(&a), IovEntry::from_slice(&b)]);
        assert_eq!(d.total_bytes(), 150);
        assert_eq!(d.region_count(), 2);

        let g = SendDesc::Generic {
            packer: Box::new(|_o: usize, _d: &mut [u8]| Ok(0usize)),
            packed_size: 24,
            regions: vec![IovEntry::from_slice(&a)],
            inorder: false,
        };
        assert_eq!(g.total_bytes(), 124);
        assert_eq!(g.region_count(), 2);
    }

    #[test]
    fn recv_capacity() {
        let mut a = [0u8; 64];
        let d = RecvDesc::Contig(IovEntryMut::from_slice(&mut a));
        assert_eq!(d.capacity(), 64);
        assert_eq!(d.region_count(), 1);
    }

    #[test]
    fn closure_is_a_packer() {
        let mut count = 0usize;
        let mut p = |offset: usize, dst: &mut [u8]| {
            count += 1;
            let n = dst.len().min(4);
            dst[..n].fill(offset as u8);
            Ok(n)
        };
        let mut buf = [0u8; 8];
        let used = FragmentPacker::pack(&mut p, 3, &mut buf).unwrap();
        assert_eq!(used, 4);
        assert_eq!(&buf[..4], &[3, 3, 3, 3]);
    }

    #[test]
    fn empty_iov_counts_one_region() {
        let d = SendDesc::Iov(vec![]);
        assert_eq!(d.total_bytes(), 0);
        assert_eq!(d.region_count(), 1);
    }
}
