#![deny(missing_docs)]
#![deny(unsafe_code)]
//! # mpicd-fabric — UCP-like transport substrate
//!
//! This crate stands in for UCX/UCP in the paper *"Improving MPI Language
//! Support Through Custom Datatype Serialization"* (SC 2024). The paper's
//! prototype (`mpicd`) sits on top of `ucp_tag_send_nbx`/`ucp_tag_recv_nbx`
//! with three payload representations:
//!
//! * `UCP_DATATYPE_CONTIG` — one contiguous buffer,
//! * `UCP_DATATYPE_IOV`    — a scatter/gather list of memory regions,
//! * `UCP_DATATYPE_GENERIC` — application pack/unpack callbacks invoked
//!   fragment-by-fragment with *virtual byte offsets*.
//!
//! We reproduce those exact semantics over an in-process fabric:
//!
//! * **Real data movement.** Every payload byte is actually copied (eager
//!   bounce buffers, per-fragment pack/unpack, per-region scatter/gather), so
//!   CPU-side costs of each strategy (extra copies, elementwise packing,
//!   receive-side allocation) are measured for real.
//! * **Modeled wire.** A [`WireModel`] adds the network-shape costs a
//!   loopback run cannot show: base latency `α`, bandwidth `β`, per-region
//!   and per-fragment overheads, and the eager→rendezvous protocol switch
//!   (an extra handshake round-trip above the threshold). Modeled time is
//!   accumulated on a [ledger](clock::WireLedger) that benchmark harnesses
//!   combine with measured wall time.
//!
//! The fabric is thread-safe: ranks may live on different threads and use
//! blocking completion, or a single thread may drive several ranks with
//! nonblocking posts (handy for deterministic benchmarking on small machines).
//!
//! ## Safety
//!
//! Like UCX itself, the post functions take raw buffer descriptors; the
//! caller must keep buffers alive and un-aliased until the returned request
//! completes. The safe, lifetime-checked interface lives one layer up in the
//! `mpicd` crate.

pub mod clock;
pub mod config;
pub mod error;
pub mod fabric;
pub mod matching;
pub mod payload;
mod pipeline;
pub mod request;
pub mod stats;
mod transfer;

pub use clock::WireLedger;
pub use config::{MatchConfig, PipelineConfig, TypecheckMode, WireModel};
pub use error::{FabricError, FabricResult};
pub use fabric::{Endpoint, Fabric, Message};
pub use matching::{Tag, ANY_SOURCE, ANY_TAG};
pub use payload::{
    FragmentPacker, FragmentUnpacker, IovEntry, IovEntryMut, RandomAccessPacker,
    RandomAccessUnpacker, RecvDesc, SendDesc,
};
pub use request::Request;
pub use stats::FabricStats;
