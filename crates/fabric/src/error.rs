//! Error types for fabric operations.
//!
//! The paper stresses that the custom datatype API propagates callback
//! failures through return codes ("Error handling is crucial for
//! serialization libraries that can fail in the case of invalid data").
//! The fabric therefore threads a typed error from every pack/unpack
//! callback invocation back to the request that triggered it.

use std::fmt;

/// Result alias used throughout the fabric.
pub type FabricResult<T> = Result<T, FabricError>;

/// Errors surfaced by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A destination or source rank outside the fabric's world.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// World size.
        world: usize,
    },
    /// The posted receive buffer is smaller than the matched message.
    Truncated {
        /// Incoming payload bytes.
        received: usize,
        /// Posted buffer capacity.
        capacity: usize,
    },
    /// A pack callback reported failure (code carried from the application).
    PackFailed(i32),
    /// An unpack callback reported failure.
    UnpackFailed(i32),
    /// A query (packed-size) callback reported failure.
    QueryFailed(i32),
    /// A region callback reported failure.
    RegionFailed(i32),
    /// A pack callback made no forward progress (returned `used == 0` for a
    /// non-empty fragment), which would loop forever.
    PackStalled {
        /// Packed-stream offset at the stall.
        offset: usize,
        /// Bytes still to pack.
        remaining: usize,
    },
    /// The iov layouts of sender and receiver disagree in total length.
    IovMismatch {
        /// Total bytes the sender provides.
        send_bytes: usize,
        /// Total bytes the receiver expects.
        recv_bytes: usize,
    },
    /// The request was cancelled before completion.
    Cancelled,
    /// The fabric was shut down while requests were pending.
    ShutDown,
    /// The sender's structural type signature disagrees with the posted
    /// receive's (`MPICD_TYPECHECK=enforce`): the pair would silently
    /// interleave wrong bytes, so the receive fails before unpacking.
    TypeMismatch {
        /// The sender's 64-bit structural signature.
        sent: u64,
        /// The signature of the datatype the receive was posted with.
        expected: u64,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRank { rank, world } => {
                write!(f, "rank {rank} outside world of size {world}")
            }
            Self::Truncated { received, capacity } => write!(
                f,
                "message truncated: {received} bytes arrived for a {capacity}-byte buffer"
            ),
            Self::PackFailed(code) => write!(f, "pack callback failed with code {code}"),
            Self::UnpackFailed(code) => write!(f, "unpack callback failed with code {code}"),
            Self::QueryFailed(code) => write!(f, "query callback failed with code {code}"),
            Self::RegionFailed(code) => write!(f, "region callback failed with code {code}"),
            Self::PackStalled { offset, remaining } => write!(
                f,
                "pack callback stalled at offset {offset} with {remaining} bytes remaining"
            ),
            Self::IovMismatch {
                send_bytes,
                recv_bytes,
            } => write!(
                f,
                "iov length mismatch: sender provides {send_bytes} bytes, receiver expects {recv_bytes}"
            ),
            Self::Cancelled => write!(f, "request cancelled"),
            Self::ShutDown => write!(f, "fabric shut down with pending requests"),
            Self::TypeMismatch { sent, expected } => write!(
                f,
                "datatype signature mismatch: sender packed {sent:#018x}, receive posted {expected:#018x}"
            ),
        }
    }
}

impl FabricError {
    /// Stable numeric code carried in flight-recorder `Error` events
    /// (`aux` word), so dumps identify the failure class without string
    /// parsing. Codes are append-only.
    pub fn flight_code(&self) -> u64 {
        match self {
            Self::InvalidRank { .. } => 1,
            Self::Truncated { .. } => 2,
            Self::PackFailed(_) => 3,
            Self::UnpackFailed(_) => 4,
            Self::QueryFailed(_) => 5,
            Self::RegionFailed(_) => 6,
            Self::PackStalled { .. } => 7,
            Self::IovMismatch { .. } => 8,
            Self::Cancelled => 9,
            Self::ShutDown => 10,
            Self::TypeMismatch { .. } => 11,
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FabricError::Truncated {
            received: 100,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("64"));
    }

    #[test]
    fn flight_codes_are_distinct() {
        let all = [
            FabricError::InvalidRank { rank: 9, world: 2 },
            FabricError::Truncated {
                received: 2,
                capacity: 1,
            },
            FabricError::PackFailed(1),
            FabricError::UnpackFailed(1),
            FabricError::QueryFailed(1),
            FabricError::RegionFailed(1),
            FabricError::PackStalled {
                offset: 0,
                remaining: 1,
            },
            FabricError::IovMismatch {
                send_bytes: 1,
                recv_bytes: 2,
            },
            FabricError::Cancelled,
            FabricError::ShutDown,
            FabricError::TypeMismatch {
                sent: 1,
                expected: 2,
            },
        ];
        let mut codes: Vec<u64> = all.iter().map(|e| e.flight_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "flight codes must be unique");
        assert!(codes.iter().all(|&c| c > 0), "0 is reserved for 'no code'");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FabricError::PackFailed(3), FabricError::PackFailed(3));
        assert_ne!(FabricError::PackFailed(3), FabricError::UnpackFailed(3));
    }
}
