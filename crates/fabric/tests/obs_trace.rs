//! End-to-end observability over the fabric — runs in its own process so
//! it can enable tracing globally: a custom-datatype (generic) send must
//! emit pack → wire → unpack spans on one timeline and advance the
//! `fabric.*` metrics.

use mpicd_fabric::{Fabric, IovEntry, IovEntryMut, RecvDesc, SendDesc};

struct CollectUnpack(*mut u8, usize);
unsafe impl Send for CollectUnpack {}
impl mpicd_fabric::FragmentUnpacker for CollectUnpack {
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
        assert!(offset + src.len() <= self.1);
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
        }
        Ok(())
    }
}

#[test]
fn custom_send_emits_pack_wire_unpack_spans_and_metrics() {
    mpicd_obs::set_enabled(true);
    let _ = mpicd_obs::trace::take_events();
    let before = mpicd_obs::global().snapshot();

    let fabric = Fabric::new(2);
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();

    let packed = 512usize;
    let header: Vec<u8> = (0..packed).map(|i| (i * 3 % 256) as u8).collect();
    let body: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
    let mut out_header = vec![0u8; packed];
    let mut out_body = vec![0u8; 4096];

    let rreq = unsafe {
        b.post_recv(
            RecvDesc::Generic {
                unpacker: Box::new(CollectUnpack(out_header.as_mut_ptr(), packed)),
                packed_size: packed,
                regions: vec![IovEntryMut::from_slice(&mut out_body)],
            },
            0,
            0,
        )
        .unwrap()
    };
    let hdr = header.clone();
    let sreq = unsafe {
        a.post_send(
            SendDesc::Generic {
                packer: Box::new(move |off: usize, dst: &mut [u8]| {
                    let n = dst.len().min(hdr.len() - off);
                    dst[..n].copy_from_slice(&hdr[off..off + n]);
                    Ok(n)
                }),
                packed_size: packed,
                regions: vec![IovEntry::from_slice(&body)],
                inorder: true,
            },
            1,
            0,
        )
        .unwrap()
    };
    sreq.wait().unwrap();
    rreq.wait().unwrap();
    assert_eq!(out_header, header);
    assert_eq!(out_body, body);

    // --- span sequence -----------------------------------------------------
    let events = mpicd_obs::trace::take_events();
    let first = |n: &str| {
        events
            .iter()
            .filter(|e| e.name == n)
            .min_by_key(|e| e.start_ns)
            .unwrap_or_else(|| panic!("missing {n} span in {events:?}"))
    };
    let pack = first("pack");
    let unpack = first("unpack");
    let wire = first("wire");
    assert_eq!(pack.cat, "fabric");
    assert_eq!(unpack.cat, "fabric");
    assert!(
        pack.start_ns <= unpack.start_ns,
        "packing starts before unpacking: pack@{} unpack@{}",
        pack.start_ns,
        unpack.start_ns
    );
    // The wire span is anchored at the match point, covering the transfer.
    assert!(wire.start_ns <= pack.start_ns, "wire anchored at match");
    assert!(wire.dur_ns > 0, "default model has nonzero wire time");
    assert_eq!(
        wire.bytes,
        (packed + body.len()) as u64,
        "wire span carries the full message size"
    );

    // --- metric deltas ------------------------------------------------------
    let after = mpicd_obs::global().snapshot();
    let d = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(d("fabric.messages"), 1);
    assert_eq!(d("fabric.bytes"), (packed + body.len()) as u64);
    assert!(d("fabric.regions") >= 1, "region traffic recorded");
    assert!(d("fabric.pack_ns") > 0, "pack timer advanced under tracing");
    assert!(d("fabric.unpack_ns") > 0, "unpack timer advanced");
    assert!(d("fabric.wire_ns") > 0, "modeled wire time recorded");
    assert_eq!(
        d("fabric.copy_bytes"),
        0,
        "custom path avoids the bounce copy"
    );
    let hist = after.histogram("fabric.msg_size").expect("size histogram");
    assert!(hist.count >= 1);
}
