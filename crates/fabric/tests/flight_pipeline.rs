//! Flight-recorder well-formedness under the parallel fragment pipeline:
//! for every transfer the recorder must emit exactly one
//! post → match → fragments → complete sequence in timestamp order, with
//! fragment bytes summing to the payload and no orphan ids — at 1, 2 and
//! 4 pipeline threads.
//!
//! The recorder state is process-global, so this is one sequential test;
//! every assertion filters events by the ids of the requests it posted.

use mpicd_fabric::{
    Fabric, FragmentPacker, FragmentUnpacker, PipelineConfig, RandomAccessPacker,
    RandomAccessUnpacker, RecvDesc, SendDesc, WireModel,
};
use mpicd_obs::flight::{self, EventKind, Method};

/// Offset-addressed packer over an owned byte vector.
struct VecPacker(Vec<u8>);

impl FragmentPacker for VecPacker {
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
        self.pack_at(offset, dst)
    }
    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        Some(self)
    }
}

impl RandomAccessPacker for VecPacker {
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
        let n = dst.len().min(self.0.len() - offset);
        dst[..n].copy_from_slice(&self.0[offset..offset + n]);
        Ok(n)
    }
}

/// Offset-addressed unpacker scattering into a caller-owned buffer.
struct PtrUnpacker(*mut u8);

unsafe impl Send for PtrUnpacker {}
// SAFETY: the parallel engine hands concurrent calls disjoint ranges.
unsafe impl Sync for PtrUnpacker {}

impl FragmentUnpacker for PtrUnpacker {
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
        self.unpack_at(offset, src)
    }
    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        Some(self)
    }
}

impl RandomAccessUnpacker for PtrUnpacker {
    fn unpack_at(&self, offset: usize, src: &[u8]) -> Result<(), i32> {
        // SAFETY: in-bounds by construction; ranges are disjoint.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
        }
        Ok(())
    }
}

fn small_frag_model() -> WireModel {
    WireModel {
        frag_size: 4 * 1024,
        ..WireModel::zero_cost()
    }
}

/// Deterministic payload for (`seed`, byte index).
fn payload(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

/// One generic→generic transfer; returns (send id, recv id, bytes moved).
fn roundtrip(fabric: &Fabric, tag: i32, seed: u64, len: usize) -> (u64, u64, u64) {
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    let data = payload(seed, len);
    let mut out = vec![0u8; len];
    // SAFETY: both buffers outlive the waits below.
    let recv = unsafe {
        b.post_recv(
            RecvDesc::Generic {
                unpacker: Box::new(PtrUnpacker(out.as_mut_ptr())),
                packed_size: len,
                regions: Vec::new(),
            },
            0,
            tag,
        )
        .unwrap()
    };
    let send = unsafe {
        a.post_send(
            SendDesc::Generic {
                packer: Box::new(VecPacker(data.clone())),
                packed_size: len,
                regions: Vec::new(),
                inorder: false,
            },
            1,
            tag,
        )
        .unwrap()
    };
    let (sfid, rfid) = (send.flight_id(), recv.flight_id());
    send.wait().unwrap();
    recv.wait().unwrap();
    assert_eq!(out, data, "payload intact (seed {seed})");
    (sfid, rfid, len as u64)
}

#[test]
fn pipeline_event_sequences_are_well_formed() {
    flight::set_enabled(true);
    let len = 64 * 1024; // 16 fragments at the 4 KiB model fragment size
    let mut all_ids = Vec::new();

    for threads in [1usize, 2, 4] {
        let fabric = Fabric::with_model_and_pipeline(
            2,
            small_frag_model(),
            PipelineConfig::with_threads(threads),
        );
        let mut ids = Vec::new();
        for (i, seed) in (0..4u64).enumerate() {
            ids.push(roundtrip(
                &fabric,
                10 + i as i32,
                seed + 7 * threads as u64,
                len,
            ));
        }
        assert_eq!(fabric.stats().pipelined, 4, "{threads} threads: pipelined");

        let events = flight::events();
        for &(sfid, rfid, bytes) in &ids {
            assert!(sfid != 0 && rfid != 0, "recorder was on at post time");
            let of_send: Vec<_> = events.iter().filter(|e| e.id == sfid).collect();
            let of_recv: Vec<_> = events.iter().filter(|e| e.id == rfid).collect();
            let count = |k: EventKind| of_send.iter().filter(|e| e.kind == k).count();

            // Exactly one of each lifecycle event, and no errors.
            assert_eq!(count(EventKind::PostSend), 1, "{threads}t id {sfid}");
            assert_eq!(count(EventKind::Match), 1, "{threads}t id {sfid}");
            assert_eq!(count(EventKind::WireModeled), 1, "{threads}t id {sfid}");
            assert_eq!(count(EventKind::Complete), 1, "{threads}t id {sfid}");
            assert_eq!(count(EventKind::Error), 0, "{threads}t id {sfid}");
            assert_eq!(
                of_recv
                    .iter()
                    .filter(|e| e.kind == EventKind::PostRecv)
                    .count(),
                1,
                "{threads}t recv id {rfid}"
            );
            assert_eq!(of_recv.len(), 1, "recv id carries only its post");

            // The match joins the two timelines and records the protocol.
            let m = of_send.iter().find(|e| e.kind == EventKind::Match).unwrap();
            assert_eq!(m.aux, rfid, "match.aux joins the receive post");
            assert_eq!(m.method, Method::Pipelined);
            assert_eq!(m.bytes, bytes);
            assert_eq!((m.src, m.dst), (0, 1));

            // Timestamp ordering: post ≤ match ≤ every fragment ≤ complete.
            let post = of_send
                .iter()
                .find(|e| e.kind == EventKind::PostSend)
                .unwrap();
            let done = of_send
                .iter()
                .find(|e| e.kind == EventKind::Complete)
                .unwrap();
            let rpost = &of_recv[0];
            assert!(post.t_ns <= m.t_ns && rpost.t_ns <= m.t_ns);
            assert!(m.t_ns <= done.t_ns);

            // Fragments cover the payload exactly, on both sides, and lie
            // inside the match→complete window even when worker threads
            // raced to record them.
            for kind in [EventKind::FragPacked, EventKind::FragUnpacked] {
                let frags: Vec<_> = of_send.iter().filter(|e| e.kind == kind).collect();
                assert_eq!(frags.len(), 16, "{threads}t {kind:?} count");
                assert_eq!(frags.iter().map(|e| e.bytes).sum::<u64>(), bytes);
                let mut offs: Vec<u64> = frags.iter().map(|e| e.aux).collect();
                offs.sort_unstable();
                assert_eq!(offs, (0..16).map(|i| i * 4096).collect::<Vec<_>>());
                for f in &frags {
                    assert!(f.t_ns >= m.t_ns && f.t_ns <= done.t_ns, "frag in window");
                }
            }
        }

        all_ids.extend(ids.iter().flat_map(|&(s, r, _)| [s, r]));
    }

    // No orphan ids: this is the only test in the binary, so every event
    // in the ring must belong to a request posted above.
    for e in flight::events() {
        assert!(all_ids.contains(&e.id), "orphan event id {}", e.id);
    }
    flight::set_enabled(false);
}
