//! Fabric integration tests: protocol combinations across threads, the
//! full send-kind × receive-kind matrix, and matched-probe semantics at
//! the transport level.

use mpicd_fabric::{
    Fabric, FragmentUnpacker, IovEntry, IovEntryMut, RecvDesc, SendDesc, WireModel, ANY_SOURCE,
    ANY_TAG,
};

/// Collects the packed stream into shared storage (offset addressed).
#[derive(Clone)]
struct Sink {
    out: std::sync::Arc<mpicd_obs::sync::Mutex<Vec<u8>>>,
}

impl Sink {
    fn new(len: usize) -> Self {
        Self {
            out: std::sync::Arc::new(mpicd_obs::sync::Mutex::new(vec![0u8; len])),
        }
    }
    fn bytes(&self) -> Vec<u8> {
        self.out.lock().clone()
    }
}

impl FragmentUnpacker for Sink {
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
        self.out.lock()[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }
}

/// A packer streaming from an owned buffer.
fn stream_packer(data: Vec<u8>) -> Box<dyn mpicd_fabric::FragmentPacker> {
    Box::new(move |offset: usize, dst: &mut [u8]| {
        let n = dst.len().min(data.len() - offset);
        dst[..n].copy_from_slice(&data[offset..offset + n]);
        Ok(n)
    })
}

/// All send kinds deliver the same byte stream to all receive kinds.
#[test]
fn send_recv_kind_matrix() {
    let total = 10_000usize;
    let payload: Vec<u8> = (0..total).map(|i| (i * 13 % 251) as u8).collect();

    for send_kind in 0..3 {
        for recv_kind in 0..3 {
            let fabric = Fabric::with_model(
                2,
                WireModel {
                    frag_size: 1024,
                    ..WireModel::default()
                },
            );
            let a = fabric.endpoint(0).unwrap();
            let b = fabric.endpoint(1).unwrap();

            // Keep the source data alive for the whole exchange.
            let src = payload.clone();
            let (half1, half2) = src.split_at(total / 3);

            let sdesc = match send_kind {
                0 => SendDesc::Contig(IovEntry::from_slice(&src)),
                1 => SendDesc::Iov(vec![
                    IovEntry::from_slice(half1),
                    IovEntry::from_slice(half2),
                ]),
                _ => SendDesc::Generic {
                    packer: stream_packer(src.clone()),
                    packed_size: total,
                    regions: vec![],
                    inorder: true,
                },
            };

            let mut out = vec![0u8; total];
            let sink = Sink::new(total);
            let (o1, o2) = out.split_at_mut(total / 4);
            let rdesc = match recv_kind {
                0 => RecvDesc::Contig(IovEntryMut {
                    ptr: o1.as_mut_ptr(),
                    len: total, // whole buffer via first pointer
                }),
                1 => RecvDesc::Iov(vec![
                    IovEntryMut::from_slice(o1),
                    IovEntryMut::from_slice(o2),
                ]),
                _ => RecvDesc::Generic {
                    unpacker: Box::new(sink.clone()),
                    packed_size: total,
                    regions: vec![],
                },
            };

            let rreq = unsafe { b.post_recv(rdesc, 0, 7).unwrap() };
            let sreq = unsafe { a.post_send(sdesc, 1, 7).unwrap() };
            sreq.wait().unwrap();
            let env = rreq.wait().unwrap();
            assert_eq!(env.bytes, total, "send {send_kind} → recv {recv_kind}");

            let got = if recv_kind == 2 { sink.bytes() } else { out };
            assert_eq!(got, payload, "send {send_kind} → recv {recv_kind}");
        }
    }
}

#[test]
fn transport_mprobe_claims_once() {
    let fabric = Fabric::new(2);
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    a.send_bytes(&[1, 2, 3], 1, 5).unwrap();
    a.send_bytes(&[4, 5, 6], 1, 5).unwrap();

    let (env1, msg1) = b.improbe(0, 5).expect("first message");
    assert_eq!(env1.bytes, 3);
    // The claimed message is out of the queue: a plain probe sees only #2.
    let env2 = b.iprobe(0, 5).expect("second message visible");
    assert_eq!(env2.bytes, 3);

    let mut buf1 = [0u8; 3];
    let req = unsafe {
        b.post_mrecv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf1)), msg1)
            .unwrap()
    };
    req.wait().unwrap();
    assert_eq!(buf1, [1, 2, 3], "claimed message is the FIRST (ordering)");

    let mut buf2 = [0u8; 3];
    b.recv_bytes(&mut buf2, 0, 5).unwrap();
    assert_eq!(buf2, [4, 5, 6]);
}

#[test]
fn dropping_matched_rendezvous_message_fails_sender() {
    let fabric = Fabric::new(2);
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    let big = vec![7u8; 100_000];
    let sreq = unsafe {
        a.post_send(SendDesc::Contig(IovEntry::from_slice(&big)), 1, 0)
            .unwrap()
    };
    {
        let (_env, _msg) = b.improbe(ANY_SOURCE, ANY_TAG).expect("claim");
        // drop without receiving
    }
    assert!(
        sreq.wait().is_err(),
        "sender learns the message was dropped"
    );
}

#[test]
fn eager_then_rendezvous_interleaving_under_threads() {
    let fabric = Fabric::new(2);
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..40u8 {
                // Alternate small (eager) and large (rendezvous) payloads.
                let size = if i % 2 == 0 { 128 } else { 100_000 };
                let data = vec![i; size];
                a.send_bytes(&data, 1, 0).unwrap();
            }
        });
        s.spawn(move || {
            for i in 0..40u8 {
                let size = if i % 2 == 0 { 128 } else { 100_000 };
                let mut buf = vec![0u8; size];
                b.recv_bytes(&mut buf, 0, 0).unwrap();
                assert!(buf.iter().all(|x| *x == i), "message {i} in order");
            }
        });
    });
    let stats = fabric.stats();
    assert_eq!(stats.eager, 20);
    assert_eq!(stats.rendezvous, 20);
}

#[test]
fn ledger_accounts_every_message_once() {
    let fabric = Fabric::new(2);
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    for _ in 0..10 {
        a.send_bytes(&[0u8; 256], 1, 0).unwrap();
        let mut buf = [0u8; 256];
        b.recv_bytes(&mut buf, 0, 0).unwrap();
    }
    assert_eq!(fabric.ledger().messages(), 10);
    let per_msg = fabric.model().message_time_ns(256, 1, false);
    assert!((fabric.ledger().total_ns() - 10.0 * per_msg).abs() < 0.1);
}
