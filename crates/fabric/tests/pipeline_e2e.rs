//! End-to-end tests of the parallel fragment pipeline through the public
//! fabric API: eligible transfers are pipelined, byte-identical to the
//! serial engine, and the serial configuration never touches the pool.

use mpicd_fabric::{
    Fabric, FragmentPacker, FragmentUnpacker, IovEntry, IovEntryMut, PipelineConfig,
    RandomAccessPacker, RandomAccessUnpacker, RecvDesc, SendDesc, WireModel,
};

/// Offset-addressed packer over an owned byte vector.
struct VecPacker(Vec<u8>);

impl FragmentPacker for VecPacker {
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
        self.pack_at(offset, dst)
    }
    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        Some(self)
    }
}

impl RandomAccessPacker for VecPacker {
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> Result<usize, i32> {
        let n = dst.len().min(self.0.len() - offset);
        dst[..n].copy_from_slice(&self.0[offset..offset + n]);
        Ok(n)
    }
}

/// Offset-addressed unpacker scattering into a caller-owned buffer.
struct PtrUnpacker(*mut u8);

unsafe impl Send for PtrUnpacker {}
// SAFETY: the parallel engine hands concurrent calls disjoint ranges.
unsafe impl Sync for PtrUnpacker {}

impl FragmentUnpacker for PtrUnpacker {
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
        self.unpack_at(offset, src)
    }
    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        Some(self)
    }
}

impl RandomAccessUnpacker for PtrUnpacker {
    fn unpack_at(&self, offset: usize, src: &[u8]) -> Result<(), i32> {
        // SAFETY: in-bounds by construction; ranges are disjoint.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
        }
        Ok(())
    }
}

fn small_frag_model() -> WireModel {
    WireModel {
        frag_size: 4 * 1024,
        ..WireModel::zero_cost()
    }
}

fn roundtrip(fabric: &Fabric, payload: &[u8]) -> Vec<u8> {
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    let mut out = vec![0u8; payload.len()];
    // SAFETY: both buffers outlive the waits below.
    let recv = unsafe {
        b.post_recv(
            RecvDesc::Generic {
                unpacker: Box::new(PtrUnpacker(out.as_mut_ptr())),
                packed_size: out.len(),
                regions: Vec::new(),
            },
            0,
            1,
        )
        .unwrap()
    };
    let send = unsafe {
        a.post_send(
            SendDesc::Generic {
                packer: Box::new(VecPacker(payload.to_vec())),
                packed_size: payload.len(),
                regions: Vec::new(),
                inorder: false,
            },
            1,
            1,
        )
        .unwrap()
    };
    send.wait().unwrap();
    recv.wait().unwrap();
    out
}

#[test]
fn eligible_transfer_is_pipelined_and_correct() {
    let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let fabric =
        Fabric::with_model_and_pipeline(2, small_frag_model(), PipelineConfig::with_threads(2));
    let out = roundtrip(&fabric, &payload);
    assert_eq!(out, payload);
    assert_eq!(fabric.stats().pipelined, 1, "transfer used the pipeline");
    assert_eq!(fabric.stats().messages, 1);
}

#[test]
fn serial_config_never_pipelines_and_matches() {
    let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 241) as u8).collect();
    let serial = Fabric::with_model_and_pipeline(2, small_frag_model(), PipelineConfig::serial());
    let out = roundtrip(&serial, &payload);
    assert_eq!(out, payload, "serial fallback moves identical bytes");
    assert_eq!(serial.stats().pipelined, 0);

    // Same transfer, parallel config: identical bytes and traffic stats
    // except the `pipelined` counter.
    let par =
        Fabric::with_model_and_pipeline(2, small_frag_model(), PipelineConfig::with_threads(4));
    let out2 = roundtrip(&par, &payload);
    assert_eq!(out2, out);
    let (s, p) = (serial.stats(), par.stats());
    assert_eq!(
        (s.messages, s.bytes, s.fragments),
        (p.messages, p.bytes, p.fragments)
    );
    assert_eq!(p.pipelined, 1);
}

#[test]
fn inorder_sender_stays_serial() {
    let payload: Vec<u8> = (0..32 * 1024).map(|i| (i % 239) as u8).collect();
    let fabric =
        Fabric::with_model_and_pipeline(2, small_frag_model(), PipelineConfig::with_threads(4));
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    let mut out = vec![0u8; payload.len()];
    // SAFETY: buffers outlive the waits.
    let recv = unsafe {
        b.post_recv(
            RecvDesc::Generic {
                unpacker: Box::new(PtrUnpacker(out.as_mut_ptr())),
                packed_size: out.len(),
                regions: Vec::new(),
            },
            0,
            2,
        )
        .unwrap()
    };
    let send = unsafe {
        a.post_send(
            SendDesc::Generic {
                packer: Box::new(VecPacker(payload.clone())),
                packed_size: payload.len(),
                regions: Vec::new(),
                inorder: true, // demands in-order delivery → serial engine
            },
            1,
            2,
        )
        .unwrap()
    };
    send.wait().unwrap();
    recv.wait().unwrap();
    assert_eq!(out, payload);
    assert_eq!(
        fabric.stats().pipelined,
        0,
        "inorder sender never pipelines"
    );
}

#[test]
fn streaming_callbacks_stay_serial() {
    // A plain closure packer exposes no random-access view.
    let payload: Vec<u8> = (0..32 * 1024).map(|i| (i % 233) as u8).collect();
    let fabric =
        Fabric::with_model_and_pipeline(2, small_frag_model(), PipelineConfig::with_threads(4));
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    let mut out = vec![0u8; payload.len()];
    let src = payload.clone();
    // SAFETY: buffers outlive the waits.
    let recv = unsafe {
        b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut out)), 0, 3)
            .unwrap()
    };
    let send = unsafe {
        a.post_send(
            SendDesc::Generic {
                packer: Box::new(move |offset: usize, dst: &mut [u8]| {
                    let n = dst.len().min(src.len() - offset);
                    dst[..n].copy_from_slice(&src[offset..offset + n]);
                    Ok(n)
                }),
                packed_size: payload.len(),
                regions: Vec::new(),
                inorder: false,
            },
            1,
            3,
        )
        .unwrap()
    };
    send.wait().unwrap();
    recv.wait().unwrap();
    assert_eq!(out, payload);
    assert_eq!(
        fabric.stats().pipelined,
        0,
        "no random-access view → serial"
    );
}

#[test]
fn large_contig_rendezvous_is_pipelined() {
    // Pure memory→memory above the fragment size is eligible too.
    let payload: Vec<u8> = (0..256 * 1024).map(|i| (i % 255) as u8).collect();
    let fabric =
        Fabric::with_model_and_pipeline(2, small_frag_model(), PipelineConfig::with_threads(2));
    let a = fabric.endpoint(0).unwrap();
    let b = fabric.endpoint(1).unwrap();
    let mut out = vec![0u8; payload.len()];
    // SAFETY: buffers outlive the waits.
    let recv = unsafe {
        b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut out)), 0, 4)
            .unwrap()
    };
    let send = unsafe {
        a.post_send(SendDesc::Contig(IovEntry::from_slice(&payload)), 1, 4)
            .unwrap()
    };
    send.wait().unwrap();
    recv.wait().unwrap();
    assert_eq!(out, payload);
    assert_eq!(fabric.stats().pipelined, 1);
    assert_eq!(fabric.stats().rendezvous, 1);
}
