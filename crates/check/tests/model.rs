//! End-to-end tests of the model checker itself: known-racy protocols
//! must fail (with actionable reports), known-correct ones must survive
//! exhaustive exploration, and failures must replay deterministically.

use mpicd_check::sync::{fence, AtomicU64, Condvar, Mutex, Ordering};
use mpicd_check::{thread, Model, RaceCell};
use std::sync::Arc;

// ---- race detector ----------------------------------------------------------

#[test]
fn unsynchronized_writes_race() {
    let failure = Model::new()
        .find_bug(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let c2 = cell.clone();
            let t = thread::spawn(move || c2.with_mut(|v| *v += 1));
            cell.with_mut(|v| *v += 1);
            t.join();
        })
        .expect("two unsynchronized writers must race");
    assert!(failure.message.contains("data race"), "{failure}");
    // Both access sites named, pointing into this file.
    assert!(
        failure.message.matches("tests/model.rs").count() >= 2,
        "both sites reported: {failure}"
    );
}

#[test]
fn read_write_race_is_caught() {
    let failure = Model::new()
        .find_bug(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let c2 = cell.clone();
            let t = thread::spawn(move || c2.with(|v| *v));
            cell.with_mut(|v| *v = 7);
            t.join();
        })
        .expect("unsynchronized read/write must race");
    assert!(failure.message.contains("data race"), "{failure}");
}

#[test]
fn mutex_protected_writes_do_not_race() {
    let ok = Model::new().find_bug(|| {
        let shared = Arc::new((Mutex::new(()), RaceCell::new(0u32)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            let _g = s2.0.lock();
            s2.1.with_mut(|v| *v += 1);
        });
        {
            let _g = shared.0.lock();
            shared.1.with_mut(|v| *v += 1);
        }
        t.join();
        let _g = shared.0.lock();
        assert_eq!(shared.1.with(|v| *v), 2);
    });
    assert!(ok.is_none(), "lock discipline is race-free: {ok:?}");
}

#[test]
fn join_establishes_happens_before() {
    let ok = Model::new().find_bug(|| {
        let cell = Arc::new(RaceCell::new(0u32));
        let c2 = cell.clone();
        let t = thread::spawn(move || c2.with_mut(|v| *v = 5));
        t.join();
        // Ordered by the join edge: not a race.
        assert_eq!(cell.with(|v| *v), 5);
    });
    assert!(ok.is_none(), "join-ordered access flagged: {ok:?}");
}

// ---- weak-memory model ------------------------------------------------------

/// Message passing with Release/Acquire is correct: the flag's release
/// store publishes the payload.
#[test]
fn release_acquire_message_passing_passes() {
    let ok = Model::new().find_bug(|| {
        let shared = Arc::new((AtomicU64::new(0), RaceCell::new(0u64)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.1.with_mut(|v| *v = 42);
            s2.0.store(1, Ordering::Release);
        });
        if shared.0.load(Ordering::Acquire) == 1 {
            assert_eq!(shared.1.with(|v| *v), 42, "payload published by flag");
        }
        t.join();
    });
    assert!(ok.is_none(), "release/acquire handoff flagged: {ok:?}");
}

/// The same protocol with Relaxed on the flag is broken — the checker
/// must find the schedule where the reader sees the flag but not the
/// payload (a race, since no happens-before edge exists).
#[test]
fn relaxed_message_passing_fails() {
    let failure = Model::new()
        .find_bug(|| {
            let shared = Arc::new((AtomicU64::new(0), RaceCell::new(0u64)));
            let s2 = shared.clone();
            let t = thread::spawn(move || {
                s2.1.with_mut(|v| *v = 42);
                s2.0.store(1, Ordering::Relaxed);
            });
            if shared.0.load(Ordering::Relaxed) == 1 {
                assert_eq!(shared.1.with(|v| *v), 42);
            }
            t.join();
        })
        .expect("relaxed flag cannot publish the payload");
    assert!(failure.message.contains("data race"), "{failure}");
}

/// Fences restore correctness: release fence before the relaxed store,
/// acquire fence after the relaxed load.
#[test]
fn fence_synchronized_message_passing_passes() {
    let ok = Model::new().find_bug(|| {
        let shared = Arc::new((AtomicU64::new(0), RaceCell::new(0u64)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.1.with_mut(|v| *v = 42);
            fence(Ordering::Release);
            s2.0.store(1, Ordering::Relaxed);
        });
        if shared.0.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(shared.1.with(|v| *v), 42);
        }
        t.join();
    });
    assert!(ok.is_none(), "fence-synchronized handoff flagged: {ok:?}");
}

/// Store-buffering litmus (Dekker): with SeqCst both threads cannot read
/// the other's flag as 0.
#[test]
fn seqcst_store_buffering_is_sequentially_consistent() {
    let ok = Model::new().find_bug(|| {
        let shared = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            s2.0.store(1, Ordering::SeqCst);
            s2.1.load(Ordering::SeqCst)
        });
        shared.1.store(1, Ordering::SeqCst);
        let saw_x = shared.0.load(Ordering::SeqCst);
        let saw_y = t.join();
        assert!(saw_x == 1 || saw_y == 1, "SC forbids both reading 0");
    });
    assert!(ok.is_none(), "SeqCst store-buffering violated SC: {ok:?}");
}

/// The same litmus with Relaxed must exhibit the both-read-0 outcome.
#[test]
fn relaxed_store_buffering_observes_stale_reads() {
    let failure = Model::new()
        .find_bug(|| {
            let shared = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
            let s2 = shared.clone();
            let t = thread::spawn(move || {
                s2.0.store(1, Ordering::Relaxed);
                s2.1.load(Ordering::Relaxed)
            });
            shared.1.store(1, Ordering::Relaxed);
            let saw_x = shared.0.load(Ordering::Relaxed);
            let saw_y = t.join();
            assert!(saw_x == 1 || saw_y == 1);
        })
        .expect("relaxed store-buffering must allow both threads to read 0");
    assert!(failure.message.contains("assert"), "{failure}");
}

/// Lost update: load-then-store increments are not atomic; DFS must find
/// the interleaving where one increment vanishes. RMW increments can't
/// lose updates and must pass.
#[test]
fn lost_update_found_rmw_safe() {
    let racy = Model::new().find_bug(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    assert!(racy.is_some(), "load+store increment must lose an update");

    let safe = Model::new().find_bug(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
        n.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(safe.is_none(), "fetch_add lost an update: {safe:?}");
}

// ---- mutex / condvar --------------------------------------------------------

#[test]
fn lock_order_inversion_deadlocks() {
    let failure = Model::new()
        .find_bug(|| {
            let locks = Arc::new((Mutex::new(()), Mutex::new(())));
            let l2 = locks.clone();
            let t = thread::spawn(move || {
                let _a = l2.0.lock();
                let _b = l2.1.lock();
            });
            let _b = locks.1.lock();
            let _a = locks.0.lock();
            drop((_a, _b));
            t.join();
        })
        .expect("AB-BA locking must deadlock on some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
    assert!(
        failure.message.contains("blocked"),
        "blocked sites listed: {failure}"
    );
}

/// Wait without a predicate loop: the notify can fire before the wait,
/// and the waiter sleeps forever — a lost wakeup the checker reports as
/// a deadlock.
#[test]
fn lost_wakeup_detected() {
    let failure = Model::new()
        .find_bug(|| {
            let shared = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = shared.clone();
            let t = thread::spawn(move || {
                let _unused = s2.1.wait(s2.0.lock()); // BUG: no predicate re-check
            });
            *shared.0.lock() = true;
            shared.1.notify_one();
            t.join();
        })
        .expect("unconditional wait must miss the early notify");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// The textbook predicate loop is correct under every schedule.
#[test]
fn predicate_loop_wakeup_passes() {
    let ok = Model::new().find_bug(|| {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let t = thread::spawn(move || {
            let mut ready = s2.0.lock();
            while !*ready {
                ready = s2.1.wait(ready);
            }
        });
        *shared.0.lock() = true;
        shared.1.notify_one();
        t.join();
    });
    assert!(ok.is_none(), "predicate-loop wait flagged: {ok:?}");
}

/// With no notifier, a timed wait must take its timeout path rather than
/// deadlock — the timeout is a schedulable event.
#[test]
fn wait_timeout_fires_without_notify() {
    let ok = Model::new().find_bug(|| {
        let shared = (Mutex::new(()), Condvar::new());
        let (g, timed_out) = shared
            .1
            .wait_timeout(shared.0.lock(), std::time::Duration::from_millis(1));
        drop(g);
        assert!(
            timed_out,
            "nobody notifies, so only the timeout path exists"
        );
    });
    assert!(ok.is_none(), "timed wait deadlocked or mis-woke: {ok:?}");
}

/// `notify_one` with two waiters: which waiter wakes (and hence records
/// itself first) varies across explored schedules, so an assertion that
/// a *specific* one is always first must fail. No spin-waiting: models
/// may not rely on fair scheduling, so the arming handshake uses a
/// condvar too.
#[test]
fn notify_one_target_is_explored() {
    struct State {
        armed: u32,
        go: bool,
        woken: Vec<u32>,
    }
    let failure = Model::new()
        .find_bug(|| {
            let shared = Arc::new((
                Mutex::new(State {
                    armed: 0,
                    go: false,
                    woken: Vec::new(),
                }),
                Condvar::new(), // armed changed
                Condvar::new(), // go flag set
            ));
            let waiter = |id: u32| {
                let s = shared.clone();
                thread::spawn(move || {
                    let mut st = s.0.lock();
                    st.armed += 1;
                    s.1.notify_all();
                    while !st.go {
                        st = s.2.wait(st);
                    }
                    st.woken.push(id);
                    // Chain the single wakeup to the other waiter.
                    s.2.notify_one();
                })
            };
            let t1 = waiter(1);
            let t2 = waiter(2);
            {
                let mut st = shared.0.lock();
                while st.armed < 2 {
                    st = shared.1.wait(st);
                }
                st.go = true;
            }
            shared.2.notify_one();
            t1.join();
            t2.join();
            let st = shared.0.lock();
            assert_eq!(st.woken[0], 1, "assume waiter 1 always wakes first");
        })
        .expect("notify_one must be able to wake either waiter first");
    assert!(failure.message.contains("assume waiter 1"), "{failure}");
}

// ---- search & replay machinery ----------------------------------------------

/// A failing schedule replays deterministically from its decision list.
#[test]
fn failure_replays_from_decisions() {
    let scenario = || {
        let cell = Arc::new(RaceCell::new(0u32));
        let c2 = cell.clone();
        let t = thread::spawn(move || c2.with_mut(|v| *v += 1));
        cell.with_mut(|v| *v += 1);
        t.join();
    };
    let failure = Model::new().find_bug(scenario).expect("race exists");
    let replayed = Model::new()
        .replay(failure.decisions.clone(), scenario)
        .expect("replaying the recorded decisions must reproduce the failure");
    assert_eq!(failure.message, replayed.message);
}

/// A PCT failure carries its seed, and one iteration with that seed
/// reproduces it.
#[test]
fn pct_failure_reproduces_from_seed() {
    let scenario = || {
        let cell = Arc::new(RaceCell::new(0u32));
        let c2 = cell.clone();
        let t = thread::spawn(move || c2.with_mut(|v| *v += 1));
        cell.with_mut(|v| *v += 1);
        t.join();
    };
    let failure = Model::pct(64, 0xC0FFEE)
        .find_bug(scenario)
        .expect("race exists");
    let seed = failure.seed.expect("PCT failures carry their seed");
    let again = Model::pct(1, seed)
        .find_bug(scenario)
        .expect("the failing seed must reproduce the failure");
    assert_eq!(failure.message, again.message);
}

/// The failure report contains a copy-pasteable replay recipe.
#[test]
fn report_contains_replay_recipe() {
    let failure = Model::new()
        .find_bug(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let c2 = cell.clone();
            let t = thread::spawn(move || c2.with_mut(|v| *v += 1));
            cell.with_mut(|v| *v += 1);
            t.join();
        })
        .expect("race exists");
    let report = failure.report();
    assert!(report.contains(mpicd_check::ENV_REPLAY), "{report}");
    assert!(report.contains("iteration"), "{report}");
}

/// A spin loop with no writer blows the step budget and is reported as a
/// livelock instead of hanging the test process.
#[test]
fn livelock_hits_step_budget() {
    let failure = Model::pct(1, 1)
        .max_steps(300)
        .find_bug(|| {
            let flag = AtomicU64::new(0);
            while flag.load(Ordering::Acquire) == 0 {
                thread::yield_now();
            }
        })
        .expect("spin without writer must exceed the step budget");
    assert!(failure.message.contains("scheduling steps"), "{failure}");
}

/// An explicit panic inside the model surfaces as a failure with the
/// panic message and an operation trace.
#[test]
fn user_panic_is_reported_with_trace() {
    let failure = Model::new()
        .find_bug(|| {
            let n = AtomicU64::new(1);
            let v = n.load(Ordering::SeqCst);
            assert_eq!(v, 2, "deliberate model assertion");
        })
        .expect("assertion must fail");
    assert!(
        failure.message.contains("deliberate model assertion"),
        "{failure}"
    );
    assert!(failure.message.contains("last operations"), "{failure}");
}

/// Outside a model, the instrumented primitives behave like std: this
/// test uses them directly with real threads.
#[test]
fn primitives_fall_back_to_std_outside_models() {
    let n = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (n2, m2) = (n.clone(), m.clone());
            thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
                *m2.lock() += 1;
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(n.load(Ordering::SeqCst), 4);
    assert_eq!(*m.lock(), 4);
}
