//! Seeded xorshift64* PRNG.
//!
//! The workspace runs on machines with no registry access, so `rand` is
//! unavailable; every randomized test and benchmark workload draws from
//! this generator instead. This is the canonical implementation —
//! `mpicd-obs::rng` re-exports it (the checker sits below `mpicd-obs` in
//! the crate graph so the instrumented primitives can be aliased into
//! `mpicd_obs::sync` under `cfg(mpicd_check)`), and the PCT scheduler
//! draws its priorities and change points from it. xorshift64* (Vigna 2016) passes BigCrush's
//! low-linearity tests after the multiplicative scramble and is more than
//! random enough for workload shapes and property-style tests — while
//! being deterministic per seed, which the tests rely on for
//! reproducibility.

/// A xorshift64* generator. State must be non-zero; seed 0 is remapped.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// New generator from `seed` (0 is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); bias is < 2^-32 for any
    /// bound that fits observability/test use, which is fine here.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Next `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Next `bool` with probability `num/den` of being true.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }

    /// Next `f64` uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A random `Vec<u8>` of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64Star::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = XorShift64Star::new(7);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = XorShift64Star::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range(0, 8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all 8 values hit in 1000 draws");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64Star::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} near 0.5");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = XorShift64Star::new(11);
        let v = r.bytes(13);
        assert_eq!(v.len(), 13);
        assert!(v.iter().any(|b| *b != 0));
    }
}
