//! `mpicd-check` — deterministic concurrency model checking for the
//! mpicd workspace, with zero external dependencies.
//!
//! The crate provides instrumented mirrors of the std synchronization
//! vocabulary ([`sync::AtomicU64`], [`sync::Mutex`], [`sync::Condvar`],
//! [`thread::spawn`], …) plus a [`model`] runner that executes a closure
//! under a *controlled scheduler*: every instrumented operation is a
//! yield point, only one logical thread runs between yield points, and
//! the scheduler re-runs the closure over many interleavings —
//! bounded-exhaustive DFS (with a preemption bound) and seeded PCT-style
//! randomized priority schedules. On top of the schedule exploration sit
//! two detectors:
//!
//! * a **weak-memory model**: non-SeqCst atomic loads may observe any
//!   coherence-eligible stale store, so a missing `Release`/`Acquire`
//!   pair produces a real assertion failure instead of compiling to an
//!   invisible x86 accident;
//! * a **happens-before race detector** ([`RaceCell`]): conflicting
//!   accesses not ordered by the synchronization the checker observed
//!   fail the model with *both* access sites.
//!
//! Failures print the decision trace and a replay recipe
//! (`MPICD_CHECK_REPLAY=<decisions>` / `MPICD_CHECK_SEED=<seed>`), so a
//! failing schedule can be re-executed deterministically under a
//! debugger.
//!
//! Production crates adopt the instrumented types through type aliases
//! gated on `--cfg mpicd_check` (see `mpicd-obs::sync`), so release
//! builds keep the raw std primitives with zero overhead.
//!
//! ```
//! use mpicd_check::{Model, RaceCell, thread};
//! use std::sync::Arc;
//!
//! // Two unsynchronized writers: the checker finds the race and names
//! // both access sites.
//! let failure = Model::new().find_bug(|| {
//!     let cell = Arc::new(RaceCell::new(0u32));
//!     let c2 = cell.clone();
//!     let t = thread::spawn(move || c2.with_mut(|v| *v += 1));
//!     cell.with_mut(|v| *v += 1);
//!     t.join();
//! });
//! assert!(failure.unwrap().message.contains("data race"));
//! ```
//!
//! The closure must be **deterministic** apart from scheduling: no wall
//! clock, no OS randomness, no real I/O. Iteration-varying behavior
//! breaks DFS replay (debug builds assert divergence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod rng;
mod sched;
mod strategy;
pub mod sync;
pub mod thread;
pub mod vclock;

pub use cell::RaceCell;
pub use rng::XorShift64Star;

use std::panic::Location;
use std::sync::{Arc, Mutex, Once};

use strategy::{Decision, DfsPrefix, Pct, Replay, Strategy};

/// Env var: comma-separated decision list; replays exactly one schedule.
pub const ENV_REPLAY: &str = "MPICD_CHECK_REPLAY";
/// Env var: u64 seed; runs exactly one PCT iteration with that seed.
pub const ENV_SEED: &str = "MPICD_CHECK_SEED";

static QUIET_ABORT_HOOK: Once = Once::new();

/// Teardown of a failed iteration unwinds every parked thread with a
/// private payload; keep the default panic hook from spamming stderr
/// with those.
fn install_quiet_abort_hook() {
    QUIET_ABORT_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<sched::Abort>() {
                return;
            }
            prev(info);
        }));
    });
}

/// A schedule on which the model failed, with everything needed to
/// reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (assertion, race with both sites, deadlock with
    /// blocked sites, …) plus the trailing operation trace.
    pub message: String,
    /// The decision sequence of the failing iteration (schedule picks and
    /// value picks, in order).
    pub decisions: Vec<usize>,
    /// The PCT seed of the failing iteration, when randomized search
    /// found it.
    pub seed: Option<u64>,
    /// 1-based iteration number on which the failure surfaced.
    pub iteration: usize,
}

impl Failure {
    /// Human-readable report with a deterministic replay recipe.
    pub fn report(&self) -> String {
        let decisions: Vec<String> = self.decisions.iter().map(|d| d.to_string()).collect();
        let mut out = format!(
            "concurrency model failed (iteration {}):\n{}\n\nreplay exactly: {}={}",
            self.iteration,
            self.message,
            ENV_REPLAY,
            decisions.join(",")
        );
        if let Some(s) = self.seed {
            out.push_str(&format!("\n  (or re-search: {ENV_SEED}={s})"));
        }
        out
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.report())
    }
}

enum Kind {
    Dfs,
    Pct { iterations: usize, seed: u64 },
}

/// Configured model checker; run it with [`Model::check`] (panic on
/// failure) or [`Model::find_bug`] (return the failure — for tests that
/// *expect* one).
pub struct Model {
    kind: Kind,
    preemption_bound: Option<usize>,
    max_steps: usize,
    max_iterations: usize,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Bounded-exhaustive DFS over schedules, preemption bound 2 —
    /// exhaustive for the bug classes that need at most two forced
    /// context switches, which per Musuvathi & Qadeer covers most real
    /// concurrency bugs at a tractable schedule count.
    pub fn new() -> Self {
        Self {
            kind: Kind::Dfs,
            preemption_bound: Some(2),
            max_steps: 20_000,
            max_iterations: 50_000,
        }
    }

    /// Seeded PCT-style randomized priority search, `iterations` runs.
    /// No preemption bound: random change points reach bug depths DFS's
    /// bound excludes.
    pub fn pct(iterations: usize, seed: u64) -> Self {
        Self {
            kind: Kind::Pct { iterations, seed },
            preemption_bound: None,
            max_steps: 20_000,
            max_iterations: iterations,
        }
    }

    /// Set the preemption bound for DFS (`None` = unbounded: full
    /// exhaustive, exponentially larger).
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Cap scheduling steps per iteration (livelock guard).
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Cap DFS iterations; exceeding the cap panics loudly rather than
    /// silently truncating exploration.
    pub fn max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Explore schedules of `f`; panic with a replayable report on the
    /// first failing one.
    ///
    /// Honors [`ENV_REPLAY`] (run exactly that decision sequence) and
    /// [`ENV_SEED`] (run exactly one PCT iteration with that seed) for
    /// reproducing a printed failure; filter to a single test when using
    /// them, since they apply to every model in the process.
    #[track_caller]
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let caller = Location::caller();
        if let Ok(spec) = std::env::var(ENV_REPLAY) {
            let decisions: Vec<usize> = spec
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad {ENV_REPLAY} entry {s:?}"))
                })
                .collect();
            if let Some(failure) = self.replay(decisions, f) {
                panic!("{} [model at {caller}]", failure.report());
            }
            return; // replay passed (e.g. after a fix): fine
        }
        let env_seed = std::env::var(ENV_SEED).ok().map(|s| {
            s.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad {ENV_SEED} value {s:?}"))
        });
        let result = if let Some(seed) = env_seed {
            Model::pct(1, seed).run(f)
        } else {
            self.run(f)
        };
        if let Some(failure) = result {
            panic!("{} [model at {caller}]", failure.report());
        }
    }

    /// Explore schedules of `f`; return the first failure instead of
    /// panicking. This is how negative tests assert the checker *catches*
    /// a seeded bug. Ignores the replay env vars (hermetic).
    pub fn find_bug<F>(&self, f: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.run(f)
    }

    /// Run exactly one iteration following `decisions` verbatim (as
    /// printed in a [`Failure`] report) and return the failure it
    /// reproduces, if any.
    pub fn replay<F>(&self, decisions: Vec<usize>, f: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let shown = decisions.clone();
        // Replay must not be re-bounded: the recorded schedule already
        // respected whatever bound produced it.
        let (failure, _) = run_once(&f, Box::new(Replay::new(decisions)), None, self.max_steps);
        failure.map(|message| Failure {
            message,
            decisions: shown,
            seed: None,
            iteration: 1,
        })
    }

    fn run<F>(&self, f: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            sched::current().is_none(),
            "nested model() is not supported"
        );
        install_quiet_abort_hook();
        let f = Arc::new(f);
        match self.kind {
            Kind::Dfs => {
                let mut prefix: Vec<Decision> = Vec::new();
                let mut iteration = 0usize;
                loop {
                    iteration += 1;
                    assert!(
                        iteration <= self.max_iterations,
                        "DFS did not exhaust the schedule space within {} iterations; \
                         shrink the model, lower the preemption bound, or raise \
                         max_iterations",
                        self.max_iterations
                    );
                    let (failure, decisions) = run_once(
                        &f,
                        Box::new(DfsPrefix::new(std::mem::take(&mut prefix))),
                        self.preemption_bound,
                        self.max_steps,
                    );
                    if let Some(message) = failure {
                        return Some(Failure {
                            message,
                            decisions: decisions.iter().map(|d| d.chosen).collect(),
                            seed: None,
                            iteration,
                        });
                    }
                    match DfsPrefix::advance(decisions) {
                        Some(p) => prefix = p,
                        None => return None,
                    }
                }
            }
            Kind::Pct { iterations, seed } => {
                for i in 0..iterations {
                    // Spread per-iteration seeds with the golden-ratio
                    // increment so adjacent iterations decorrelate.
                    let s = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let (failure, decisions) = run_once(
                        &f,
                        Box::new(Pct::new(s)),
                        self.preemption_bound,
                        self.max_steps,
                    );
                    if let Some(message) = failure {
                        return Some(Failure {
                            message,
                            decisions: decisions.iter().map(|d| d.chosen).collect(),
                            seed: Some(s),
                            iteration: i + 1,
                        });
                    }
                }
                None
            }
        }
    }
}

/// Check `f` under the default search: bounded-exhaustive DFS
/// (preemption bound 2), then 100 seeded PCT iterations for bugs beyond
/// the bound. Panics with a replayable report on the first failure.
#[track_caller]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let g = Arc::clone(&f);
    Model::new().check(move || g());
    // "mpicd!" as a seed: arbitrary but stable across runs.
    Model::pct(100, 0x6D70_6963_6421).check(move || f());
}

/// One model iteration: spawn the root logical thread, run it under
/// `strategy`, return (failure, decisions).
fn run_once<F>(
    f: &Arc<F>,
    strategy: Box<dyn Strategy>,
    preemption_bound: Option<usize>,
    max_steps: usize,
) -> (Option<String>, Vec<Decision>)
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = sched::Execution::new(strategy, preemption_bound, max_steps);
    let root = exec.register_thread(None);
    debug_assert_eq!(root, 0);
    let result: Arc<Mutex<Option<()>>> = Arc::new(Mutex::new(None));
    let (e2, f2, r2) = (Arc::clone(&exec), Arc::clone(f), Arc::clone(&result));
    let h = std::thread::Builder::new()
        .name("mpicd-check-0".into())
        .spawn(move || thread::trampoline(&e2, 0, &r2, move || f2()))
        .expect("spawn model root thread");
    exec.attach_handle(0, h);
    exec.kick(0);
    let failure = exec.run_to_completion();
    let decisions = exec.take_decisions();
    (failure, decisions)
}
