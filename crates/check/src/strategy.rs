//! Schedule-exploration strategies.
//!
//! A strategy answers two kinds of questions, both posed only when there
//! are at least two options (forced moves are never recorded):
//!
//! * *schedule* — which runnable thread performs the next operation;
//! * *value* — which eligible (possibly stale) store a weak atomic load
//!   observes, or which condvar waiter a `notify_one` wakes.
//!
//! Every answer is appended to the execution's decision list, so any
//! iteration — DFS or randomized — can be replayed exactly from the
//! printed decision string ([`Replay`]).
//!
//! [`DfsPrefix`] implements bounded-exhaustive search: the driver in
//! `lib.rs` keeps a decision stack `(chosen, n)` and re-runs the model
//! with the last non-exhausted decision advanced, classic
//! iterative-deepening DFS over the schedule tree (preemption bounding
//! happens upstream, in the scheduler, by restricting the candidate set).
//!
//! [`Pct`] implements PCT-style randomized priority scheduling
//! (Burckhardt et al., ASPLOS 2010): threads get random priorities, the
//! highest-priority runnable thread always runs, and a handful of random
//! *change points* demote the running thread so bugs needing a specific
//! preemption depth are hit with known probability. Value choices are
//! drawn uniformly. Seeded by xorshift64*, so a failing seed replays
//! deterministically.

use crate::rng::XorShift64Star;

/// Decision source for one model iteration. Implementations must be
/// deterministic functions of their construction parameters.
pub(crate) trait Strategy: Send {
    /// Pick the next thread to run; returns an index into `candidates`
    /// (dense tids, ascending). Called only when `candidates.len() >= 2`.
    fn choose_schedule(&mut self, candidates: &[usize], current: usize) -> usize;

    /// Pick one of `n >= 2` value options (stale-store choice, notify
    /// target).
    fn choose_value(&mut self, n: usize) -> usize;

    /// Called once when the iteration completes (hook for bookkeeping).
    fn finished(&mut self) {}
}

/// One recorded decision: the option taken and how many there were.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub n: usize,
}

/// DFS iteration strategy: replay a prefix of decisions, then take
/// option 0 for every new decision point, recording `(chosen, n)` so the
/// driver can advance the stack for the next iteration.
pub(crate) struct DfsPrefix {
    prefix: Vec<Decision>,
    pos: usize,
    /// Full decision record of this iteration (prefix + new zeros).
    pub(crate) taken: Vec<Decision>,
}

impl DfsPrefix {
    pub(crate) fn new(prefix: Vec<Decision>) -> Self {
        Self {
            prefix,
            pos: 0,
            taken: Vec::new(),
        }
    }

    fn next(&mut self, n: usize) -> usize {
        let chosen = if self.pos < self.prefix.len() {
            let d = self.prefix[self.pos];
            debug_assert_eq!(
                d.n, n,
                "DFS replay diverged: model is not deterministic \
                 (decision {} had {} options, now {})",
                self.pos, d.n, n
            );
            d.chosen.min(n - 1)
        } else {
            0
        };
        self.pos += 1;
        self.taken.push(Decision { chosen, n });
        chosen
    }

    /// Advance a decision stack to the next unexplored schedule; returns
    /// `None` when the space is exhausted.
    pub(crate) fn advance(mut taken: Vec<Decision>) -> Option<Vec<Decision>> {
        while let Some(last) = taken.last_mut() {
            if last.chosen + 1 < last.n {
                last.chosen += 1;
                return Some(taken);
            }
            taken.pop();
        }
        None
    }
}

impl Strategy for DfsPrefix {
    fn choose_schedule(&mut self, candidates: &[usize], _current: usize) -> usize {
        self.next(candidates.len())
    }

    fn choose_value(&mut self, n: usize) -> usize {
        self.next(n)
    }
}

/// PCT-style randomized priority scheduling, seeded.
pub(crate) struct Pct {
    rng: XorShift64Star,
    /// Priority per tid (higher runs first); assigned on first sight.
    priorities: Vec<u64>,
    /// Scheduling steps remaining until the next priority change point.
    until_change: u64,
}

impl Pct {
    /// `seed` fully determines the iteration. Change points are drawn
    /// geometrically (expected every ~16 scheduling decisions), which
    /// approximates PCT's d random change points without needing the
    /// (unknown) execution length up front.
    pub(crate) fn new(seed: u64) -> Self {
        let mut rng = XorShift64Star::new(seed);
        let until_change = 1 + rng.next_below(32);
        Self {
            rng,
            priorities: Vec::new(),
            until_change,
        }
    }

    fn priority(&mut self, tid: usize) -> u64 {
        while self.priorities.len() <= tid {
            // Keep priorities above 0 so demotion (to 0..) always lowers.
            let p = 1 + (self.rng.next_u64() >> 1);
            self.priorities.push(p);
        }
        self.priorities[tid]
    }
}

impl Strategy for Pct {
    fn choose_schedule(&mut self, candidates: &[usize], current: usize) -> usize {
        // Change point: demote the thread that would otherwise keep
        // running, exploring a preemption here.
        self.until_change = self.until_change.saturating_sub(1);
        if self.until_change == 0 {
            self.until_change = 1 + self.rng.next_below(32);
            if candidates.contains(&current) {
                self.priority(current);
                self.priorities[current] = 0;
            }
        }
        let mut best = 0;
        let mut best_p = 0u64;
        for (i, &t) in candidates.iter().enumerate() {
            let p = self.priority(t);
            if i == 0 || p > best_p {
                best = i;
                best_p = p;
            }
        }
        best
    }

    fn choose_value(&mut self, n: usize) -> usize {
        self.rng.next_below(n as u64) as usize
    }
}

/// Replay a recorded decision list verbatim (from a failure report).
pub(crate) struct Replay {
    decisions: Vec<usize>,
    pos: usize,
}

impl Replay {
    pub(crate) fn new(decisions: Vec<usize>) -> Self {
        Self { decisions, pos: 0 }
    }

    fn next(&mut self, n: usize) -> usize {
        let v = self.decisions.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v.min(n - 1)
    }
}

impl Strategy for Replay {
    fn choose_schedule(&mut self, candidates: &[usize], _current: usize) -> usize {
        self.next(candidates.len())
    }

    fn choose_value(&mut self, n: usize) -> usize {
        self.next(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_advance_walks_the_tree() {
        // Two binary decisions: 00 -> 01 -> 10 -> 11 -> done.
        let d = |c, n| Decision { chosen: c, n };
        let run0 = vec![d(0, 2), d(0, 2)];
        let run1 = DfsPrefix::advance(run0).unwrap();
        assert_eq!(run1, vec![d(0, 2), d(1, 2)]);
        let run2 = DfsPrefix::advance(run1).unwrap();
        assert_eq!(run2, vec![d(1, 2)]);
        // The new suffix is explored lazily (zeros appended by the next
        // run); simulate it re-recording the second decision.
        let run2_full = vec![d(1, 2), d(0, 2)];
        let run3 = DfsPrefix::advance(run2_full).unwrap();
        assert_eq!(run3, vec![d(1, 2), d(1, 2)]);
        assert_eq!(DfsPrefix::advance(run3), None);
    }

    #[test]
    fn dfs_prefix_replays_then_zeroes() {
        let d = |c, n| Decision { chosen: c, n };
        let mut s = DfsPrefix::new(vec![d(1, 3)]);
        assert_eq!(s.choose_value(3), 1, "prefix replayed");
        assert_eq!(s.choose_value(2), 0, "beyond prefix defaults to 0");
        assert_eq!(s.taken, vec![d(1, 3), d(0, 2)]);
    }

    #[test]
    fn pct_is_deterministic_per_seed() {
        let mut a = Pct::new(7);
        let mut b = Pct::new(7);
        for _ in 0..50 {
            assert_eq!(
                a.choose_schedule(&[0, 1, 2], 1),
                b.choose_schedule(&[0, 1, 2], 1)
            );
            assert_eq!(a.choose_value(4), b.choose_value(4));
        }
    }

    #[test]
    fn replay_follows_list_and_clamps() {
        let mut r = Replay::new(vec![2, 9]);
        assert_eq!(r.choose_value(3), 2);
        assert_eq!(r.choose_value(3), 2, "out-of-range clamps to n-1");
        assert_eq!(r.choose_value(5), 0, "exhausted list defaults to 0");
    }
}
