//! Race-checked plain data.
//!
//! [`RaceCell`] wraps a value the *protocol under test* claims is
//! protected by synchronization the checker can see (locks, acquire
//! loads, fences…). Accesses inside a model are checked FastTrack-style
//! against vector clocks: a read/write or write/write pair not ordered by
//! happens-before fails the model, reporting **both** access sites.
//! Outside a model, accesses are simply serialized through an internal
//! lock (no detection, no unsafety — this crate forbids `unsafe`).

use crate::sched;
use std::panic::Location;

/// A plain-data cell whose accesses are checked for data races inside a
/// model. The closure-based API (`with` / `with_mut`) keeps borrows
/// scoped to a single checked access.
#[derive(Debug, Default)]
pub struct RaceCell<T: ?Sized> {
    data: std::sync::Mutex<T>,
}

impl<T> RaceCell<T> {
    /// New cell holding `t`.
    pub const fn new(t: T) -> Self {
        Self {
            data: std::sync::Mutex::new(t),
        }
    }

    /// Consume, returning the value.
    pub fn into_inner(self) -> T {
        match self.data.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RaceCell<T> {
    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.data).cast::<()>() as usize
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, T> {
        match self.data.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Read access: fails the model if unordered with a write.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        if let Some((exec, tid)) = sched::current() {
            exec.cell_read(tid, self.addr(), Location::caller());
        }
        f(&self.locked())
    }

    /// Write access: fails the model if unordered with a read or write.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some((exec, tid)) = sched::current() {
            exec.cell_write(tid, self.addr(), Location::caller());
        }
        f(&mut self.locked())
    }

    /// Exclusive access (no race check needed: `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.data.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}
