//! Instrumented synchronization primitives.
//!
//! Drop-in mirrors of `std::sync::atomic::*`, `std::sync::Mutex` and
//! `std::sync::Condvar` that route every operation through the
//! deterministic scheduler **when the calling OS thread belongs to a
//! running [`model`](crate::model)** — and behave exactly like their std
//! counterparts otherwise (poison-ignoring for locks, real orderings for
//! atomics). The fallback matters: production crates alias these types in
//! under `cfg(mpicd_check)`, and their ordinary unit tests must keep
//! passing unmodified while only the `model(...)` tests explore
//! schedules.
//!
//! Inside a model:
//!
//! * atomics keep their *live* value in the underlying std atomic (so
//!   `const fn new` works and the newest value is always materialized)
//!   while the scheduler tracks the store history, release clocks and
//!   per-thread coherence floors that make weak orderings observable;
//! * `Mutex`/`Condvar` park logical threads in the scheduler — the real
//!   lock is only ever taken by the active thread, so it is never
//!   contended — and lock/unlock edges carry vector clocks for the race
//!   detector;
//! * `compare_exchange_weak` never fails spuriously (a deliberate
//!   under-approximation; CAS retry loops still explore all interleavings
//!   through genuine value conflicts).

use crate::sched;
use crate::sched::Execution;
use std::panic::Location;
use std::sync::Arc;
use std::time::Duration;

/// Atomic-op memory orderings, mirroring `std::sync::atomic::Ordering`.
pub use std::sync::atomic::Ordering;

fn ignore_poison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// An atomic fence; a scheduler-visible event inside a model.
#[track_caller]
pub fn fence(ord: Ordering) {
    match sched::current() {
        Some((exec, tid)) => exec.fence(tid, ord, Location::caller()),
        None => std::sync::atomic::fence(ord),
    }
}

// ---- atomics ----------------------------------------------------------------

macro_rules! int_atomic {
    ($name:ident, $std:ty, $ty:ty) => {
        /// Instrumented mirror of the std atomic of the same name.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// New atomic holding `v`.
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            fn addr(&self) -> usize {
                std::ptr::from_ref(&self.inner).cast::<()>() as usize
            }

            // The argument list mirrors `Execution::atomic_rmw`; bundling
            // would just move the count into a struct literal at one call
            // site.
            #[allow(clippy::too_many_arguments)]
            fn model_rmw(
                &self,
                exec: &Arc<Execution>,
                tid: usize,
                expect: Option<$ty>,
                success: Ordering,
                failure: Ordering,
                f: impl Fn($ty) -> $ty,
                site: &'static Location<'static>,
            ) -> ($ty, bool) {
                let init = self.inner.load(Ordering::Relaxed) as u64;
                let (old, ok) = exec.atomic_rmw(
                    tid,
                    self.addr(),
                    init,
                    expect.map(|e| e as u64),
                    |o| f(o as $ty) as u64,
                    success,
                    failure,
                    site,
                );
                let old = old as $ty;
                if ok {
                    self.inner.store(f(old), Ordering::Relaxed);
                }
                (old, ok)
            }

            /// Load; inside a model a weak ordering may observe an
            /// eligible stale store (an explored decision).
            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        let init = self.inner.load(Ordering::Relaxed) as u64;
                        exec.atomic_load(tid, self.addr(), init, ord, Location::caller()) as $ty
                    }
                    None => self.inner.load(ord),
                }
            }

            /// Store.
            #[track_caller]
            pub fn store(&self, v: $ty, ord: Ordering) {
                match sched::current() {
                    Some((exec, tid)) => {
                        let init = self.inner.load(Ordering::Relaxed) as u64;
                        exec.atomic_store(
                            tid,
                            self.addr(),
                            init,
                            v as u64,
                            ord,
                            Location::caller(),
                        );
                        self.inner.store(v, Ordering::Relaxed);
                    }
                    None => self.inner.store(v, ord),
                }
            }

            /// Swap, returning the previous value.
            #[track_caller]
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(&exec, tid, None, ord, ord, |_| v, Location::caller())
                            .0
                    }
                    None => self.inner.swap(v, ord),
                }
            }

            /// Compare-and-exchange (strong).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match sched::current() {
                    Some((exec, tid)) => {
                        let (old, ok) = self.model_rmw(
                            &exec,
                            tid,
                            Some(current),
                            success,
                            failure,
                            move |_| new,
                            Location::caller(),
                        );
                        if ok {
                            Ok(old)
                        } else {
                            Err(old)
                        }
                    }
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }

            /// Compare-and-exchange; inside a model this never fails
            /// spuriously (deliberate under-approximation).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match sched::current() {
                    Some(_) => self.compare_exchange(current, new, success, failure),
                    None => self
                        .inner
                        .compare_exchange_weak(current, new, success, failure),
                }
            }

            /// Wrapping add, returning the previous value.
            #[track_caller]
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(
                            &exec,
                            tid,
                            None,
                            ord,
                            ord,
                            |o| o.wrapping_add(v),
                            Location::caller(),
                        )
                        .0
                    }
                    None => self.inner.fetch_add(v, ord),
                }
            }

            /// Wrapping subtract, returning the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(
                            &exec,
                            tid,
                            None,
                            ord,
                            ord,
                            |o| o.wrapping_sub(v),
                            Location::caller(),
                        )
                        .0
                    }
                    None => self.inner.fetch_sub(v, ord),
                }
            }

            /// Bitwise AND, returning the previous value.
            #[track_caller]
            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(&exec, tid, None, ord, ord, |o| o & v, Location::caller())
                            .0
                    }
                    None => self.inner.fetch_and(v, ord),
                }
            }

            /// Bitwise OR, returning the previous value.
            #[track_caller]
            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(&exec, tid, None, ord, ord, |o| o | v, Location::caller())
                            .0
                    }
                    None => self.inner.fetch_or(v, ord),
                }
            }

            /// Bitwise XOR, returning the previous value.
            #[track_caller]
            pub fn fetch_xor(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(&exec, tid, None, ord, ord, |o| o ^ v, Location::caller())
                            .0
                    }
                    None => self.inner.fetch_xor(v, ord),
                }
            }

            /// Maximum, returning the previous value.
            #[track_caller]
            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(&exec, tid, None, ord, ord, |o| o.max(v), Location::caller())
                            .0
                    }
                    None => self.inner.fetch_max(v, ord),
                }
            }

            /// Minimum, returning the previous value.
            #[track_caller]
            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                match sched::current() {
                    Some((exec, tid)) => {
                        self.model_rmw(&exec, tid, None, ord, ord, |o| o.min(v), Location::caller())
                            .0
                    }
                    None => self.inner.fetch_min(v, ord),
                }
            }

            /// Fetch-and-update via a CAS loop, mirroring the std method:
            /// `Ok(previous)` once `f` returns `Some` and the exchange
            /// lands, `Err(previous)` when `f` returns `None`. Built on the
            /// instrumented load/CAS, so a model explores every retry
            /// interleaving.
            #[track_caller]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                let mut prev = self.load(fetch_order);
                while let Some(next) = f(prev) {
                    match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                        Ok(x) => return Ok(x),
                        Err(next_prev) => prev = next_prev,
                    }
                }
                Err(prev)
            }

            /// Exclusive access to the value (no model interaction: `&mut`
            /// proves no concurrency).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// Consume, returning the value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }
    };
}

int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Instrumented mirror of `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// New atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.inner).cast::<()>() as usize
    }

    // See the note on the macro-generated `model_rmw` above.
    #[allow(clippy::too_many_arguments)]
    fn model_rmw(
        &self,
        exec: &Arc<Execution>,
        tid: usize,
        expect: Option<bool>,
        success: Ordering,
        failure: Ordering,
        f: impl Fn(bool) -> bool,
        site: &'static Location<'static>,
    ) -> (bool, bool) {
        let init = self.inner.load(Ordering::Relaxed) as u64;
        let (old, ok) = exec.atomic_rmw(
            tid,
            self.addr(),
            init,
            expect.map(u64::from),
            |o| u64::from(f(o != 0)),
            success,
            failure,
            site,
        );
        let old = old != 0;
        if ok {
            self.inner.store(f(old), Ordering::Relaxed);
        }
        (old, ok)
    }

    /// Load; inside a model a weak ordering may observe an eligible stale
    /// store (an explored decision).
    #[track_caller]
    pub fn load(&self, ord: Ordering) -> bool {
        match sched::current() {
            Some((exec, tid)) => {
                let init = self.inner.load(Ordering::Relaxed) as u64;
                exec.atomic_load(tid, self.addr(), init, ord, Location::caller()) != 0
            }
            None => self.inner.load(ord),
        }
    }

    /// Store.
    #[track_caller]
    pub fn store(&self, v: bool, ord: Ordering) {
        match sched::current() {
            Some((exec, tid)) => {
                let init = self.inner.load(Ordering::Relaxed) as u64;
                exec.atomic_store(
                    tid,
                    self.addr(),
                    init,
                    u64::from(v),
                    ord,
                    Location::caller(),
                );
                self.inner.store(v, Ordering::Relaxed);
            }
            None => self.inner.store(v, ord),
        }
    }

    /// Swap, returning the previous value.
    #[track_caller]
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match sched::current() {
            Some((exec, tid)) => {
                self.model_rmw(&exec, tid, None, ord, ord, |_| v, Location::caller())
                    .0
            }
            None => self.inner.swap(v, ord),
        }
    }

    /// Compare-and-exchange (strong).
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match sched::current() {
            Some((exec, tid)) => {
                let (old, ok) = self.model_rmw(
                    &exec,
                    tid,
                    Some(current),
                    success,
                    failure,
                    move |_| new,
                    Location::caller(),
                );
                if ok {
                    Ok(old)
                } else {
                    Err(old)
                }
            }
            None => self.inner.compare_exchange(current, new, success, failure),
        }
    }

    /// Compare-and-exchange; inside a model this never fails spuriously.
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match sched::current() {
            Some(_) => self.compare_exchange(current, new, success, failure),
            None => self
                .inner
                .compare_exchange_weak(current, new, success, failure),
        }
    }

    /// Logical AND, returning the previous value.
    #[track_caller]
    pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
        match sched::current() {
            Some((exec, tid)) => {
                self.model_rmw(&exec, tid, None, ord, ord, |o| o & v, Location::caller())
                    .0
            }
            None => self.inner.fetch_and(v, ord),
        }
    }

    /// Logical OR, returning the previous value.
    #[track_caller]
    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        match sched::current() {
            Some((exec, tid)) => {
                self.model_rmw(&exec, tid, None, ord, ord, |o| o | v, Location::caller())
                    .0
            }
            None => self.inner.fetch_or(v, ord),
        }
    }

    /// Exclusive access to the value.
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    /// Consume, returning the value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}

// ---- mutex ------------------------------------------------------------------

/// Instrumented, poison-ignoring mutex. Inside a model, lock acquisition
/// parks the logical thread in the scheduler; outside one it is exactly
/// `std::sync::Mutex` minus poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the model lock (when in a model)
/// on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `(execution, tid, lock site)` when acquired inside a model.
    model: Option<(Arc<Execution>, usize, &'static Location<'static>)>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume, returning the value (poison ignored).
    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.inner).cast::<()>() as usize
    }

    /// Acquire the lock (poison ignored); a schedule point inside a model.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        match sched::current() {
            Some((exec, tid)) => {
                exec.mutex_lock(tid, self.addr(), site);
                let g = ignore_poison(self.inner.lock());
                MutexGuard {
                    lock: self,
                    model: Some((exec, tid, site)),
                    inner: Some(g),
                }
            }
            None => MutexGuard {
                lock: self,
                model: None,
                inner: Some(ignore_poison(self.inner.lock())),
            },
        }
    }

    /// Exclusive access to the value (poison ignored; no model
    /// interaction — `&mut` proves no concurrency).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Dismantle the guard without running its release logic (used by
    /// `Condvar::wait`, which releases the lock through the scheduler).
    #[allow(clippy::type_complexity)] // destructured immediately at both call sites
    fn into_parts(
        mut self,
    ) -> (
        &'a Mutex<T>,
        Option<(Arc<Execution>, usize, &'static Location<'static>)>,
        Option<std::sync::MutexGuard<'a, T>>,
    ) {
        (self.lock, self.model.take(), self.inner.take())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first; the model release is the
        // scheduler-visible event.
        drop(self.inner.take());
        if let Some((exec, tid, site)) = self.model.take() {
            exec.mutex_unlock(tid, self.lock.addr(), site);
        }
    }
}

// ---- condvar ----------------------------------------------------------------

/// Instrumented condition variable. Inside a model, waits park the
/// logical thread and `notify_one`'s choice of waiter is an explored
/// decision; `wait_timeout`'s timeout is a schedulable event, so both the
/// notified and the timed-out path are checked.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.inner).cast::<()>() as usize
    }

    /// Atomically release the guard and wait for a notification (poison
    /// ignored).
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let site = Location::caller();
        let (lock, model, std_g) = guard.into_parts();
        match model {
            Some((exec, tid, _)) => {
                drop(std_g);
                exec.condvar_wait(tid, self.addr(), lock.addr(), false, site);
                exec.mutex_lock(tid, lock.addr(), site);
                let g = ignore_poison(lock.inner.lock());
                MutexGuard {
                    lock,
                    model: Some((exec, tid, site)),
                    inner: Some(g),
                }
            }
            None => {
                let g = ignore_poison(self.inner.wait(std_g.expect("guard holds the lock")));
                MutexGuard {
                    lock,
                    model: None,
                    inner: Some(g),
                }
            }
        }
    }

    /// Like [`Self::wait`] with a timeout; returns the reacquired guard
    /// and whether the wait timed out. Inside a model the duration is
    /// ignored — the timeout firing is a scheduling decision, so both
    /// outcomes get explored.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let site = Location::caller();
        let (lock, model, std_g) = guard.into_parts();
        match model {
            Some((exec, tid, _)) => {
                drop(std_g);
                let wake = exec.condvar_wait(tid, self.addr(), lock.addr(), true, site);
                exec.mutex_lock(tid, lock.addr(), site);
                let g = ignore_poison(lock.inner.lock());
                (
                    MutexGuard {
                        lock,
                        model: Some((exec, tid, site)),
                        inner: Some(g),
                    },
                    wake == sched::Wake::TimedOut,
                )
            }
            None => {
                let (g, res) = match self
                    .inner
                    .wait_timeout(std_g.expect("guard holds the lock"), dur)
                {
                    Ok(x) => x,
                    Err(p) => p.into_inner(),
                };
                (
                    MutexGuard {
                        lock,
                        model: None,
                        inner: Some(g),
                    },
                    res.timed_out(),
                )
            }
        }
    }

    /// Wake one waiter (inside a model, *which* one is an explored
    /// decision).
    #[track_caller]
    pub fn notify_one(&self) {
        match sched::current() {
            Some((exec, tid)) => exec.condvar_notify(tid, self.addr(), false, Location::caller()),
            None => self.inner.notify_one(),
        }
    }

    /// Wake all waiters.
    #[track_caller]
    pub fn notify_all(&self) {
        match sched::current() {
            Some((exec, tid)) => exec.condvar_notify(tid, self.addr(), true, Location::caller()),
            None => self.inner.notify_all(),
        }
    }
}
