//! Instrumented thread spawn/join.
//!
//! Inside a model, `spawn` registers a new *logical* thread with the
//! scheduler — it still runs on its own OS thread, but only executes
//! while it holds the scheduler's baton, and `join` is a blocking model
//! event (deadlock-detected, vector-clock-propagating). Outside a model
//! these delegate to `std::thread`.

use crate::sched::{self, Abort, Execution};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Mutex};

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run a model thread's closure and report its outcome to the execution.
/// Shared by `spawn` and the model runner (thread 0).
pub(crate) fn trampoline<T: Send + 'static>(
    exec: &Arc<Execution>,
    tid: usize,
    result: &Mutex<Option<T>>,
    f: impl FnOnce() -> T,
) {
    sched::set_current(Some((exec.clone(), tid)));
    // Everything — including the initial park — runs under catch_unwind
    // so an `Abort` teardown never escapes to the OS thread boundary.
    match catch_unwind(AssertUnwindSafe(|| {
        exec.wait_until_active(tid);
        f()
    })) {
        Ok(v) => {
            if let Ok(mut slot) = result.lock() {
                *slot = Some(v);
            }
        }
        Err(p) => {
            if !p.is::<Abort>() {
                exec.report_panic(tid, payload_msg(p.as_ref()));
            }
            return; // torn down; the runner reports the failure
        }
    }
    // `finish_thread` reschedules and can itself detect a deadlock
    // (unwinding with `Abort`), so it needs the same containment.
    let _ = catch_unwind(AssertUnwindSafe(|| exec.finish_thread(tid)));
}

enum Inner<T> {
    Model {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
    Std(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (logical or real) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread and return its result. Inside a model this is
    /// a blocking model event; a child panic aborts the whole iteration,
    /// so on return the result is always present.
    #[track_caller]
    pub fn join(self) -> T {
        match self.inner {
            Inner::Model { exec, tid, result } => {
                let (_, me) = sched::current().expect("model JoinHandle joined outside its model");
                exec.join_thread(me, tid);
                let v = match result.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                };
                v.expect("joined thread finished without a result (teardown?)")
            }
            Inner::Std(h) => match h.join() {
                Ok(v) => v,
                Err(p) => resume_unwind(p),
            },
        }
    }
}

/// Spawn a thread; a logical (scheduler-controlled) one inside a model.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        Some((exec, parent)) => {
            // The spawn itself is a schedule point and a happens-before
            // edge from parent to child (clock seeding in register).
            exec.yield_point(parent, Location::caller());
            let tid = exec.register_thread(Some(parent));
            let result = Arc::new(Mutex::new(None));
            let (e2, r2) = (exec.clone(), result.clone());
            let h = std::thread::Builder::new()
                .name(format!("mpicd-check-{tid}"))
                .spawn(move || trampoline(&e2, tid, &r2, f))
                .expect("spawn model thread");
            exec.attach_handle(tid, h);
            JoinHandle {
                inner: Inner::Model { exec, tid, result },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
    }
}

/// Voluntary schedule point inside a model; `std::thread::yield_now`
/// outside one.
#[track_caller]
pub fn yield_now() {
    match sched::current() {
        Some((exec, tid)) => exec.yield_point(tid, Location::caller()),
        None => std::thread::yield_now(),
    }
}
