//! Vector clocks for happens-before tracking.
//!
//! Logical threads get dense per-execution ids, so a clock is a plain
//! vector of per-thread counters. `join` is the component-wise max;
//! `le` is the partial order used both by the race detector ("are these
//! two accesses ordered?") and by the weak-memory model ("is this store
//! visibly superseded at this load?").

/// A vector clock over dense logical-thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// This thread's own component.
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance `tid`'s component by one (a new local event).
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component-wise max with `other` (acquire / join).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` — i.e. the event stamped `self` happens-before (or equals)
    /// the point stamped `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(2), 0);
        c.tick(2);
        c.tick(2);
        assert_eq!(c.get(2), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_component_max() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 2);
    }

    #[test]
    fn le_partial_order() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        let mut c = VClock::new();
        c.tick(1);
        // a and c are concurrent.
        assert!(!a.le(&c));
        assert!(!c.le(&a));
    }

    #[test]
    fn zero_le_everything() {
        let z = VClock::new();
        let mut a = VClock::new();
        a.tick(3);
        assert!(z.le(&a));
        assert!(z.le(&z));
    }
}
