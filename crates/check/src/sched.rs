//! The deterministic scheduler: one logical thread runs at a time.
//!
//! Every instrumented operation (atomic access, lock, unlock, wait,
//! notify, spawn, join, cell access) is a *yield point*: the executing
//! thread asks the active [`Strategy`](crate::strategy::Strategy) which
//! runnable thread performs the next operation, parks itself on a shared
//! condvar gate if it was not chosen, and performs the operation's effect
//! only once it is the active thread. Because only the active thread ever
//! runs between yield points, a run is fully determined by the sequence
//! of choices — which is what makes schedules explorable, replayable and
//! the memory-model bookkeeping race-free.
//!
//! The same module owns the model's object state:
//!
//! * **Atomics** keep a bounded modification-order history of stores,
//!   each stamped with the writer's vector clock and (for
//!   release-flavored stores, or relaxed stores after a release fence)
//!   the published *release clock*. Non-SeqCst loads may read any
//!   *eligible* stale store — one not superseded by a store that
//!   happens-before the load and not older than the thread's
//!   per-location coherence floor — with the choice of store being one
//!   more explored decision. This is how a missing `Release`/`Acquire`
//!   pair becomes an observable test failure instead of an invisible
//!   x86 accident.
//! * **Mutexes / condvars** track owners and waiter queues; blocked
//!   threads leave the runnable set, and a schedule point with no
//!   runnable thread is reported as a deadlock with every thread's
//!   blocking site.
//! * **[`RaceCell`](crate::cell::RaceCell) data** carries FastTrack-style
//!   read/write vector-clock summaries; an unordered conflicting pair
//!   panics the model with **both** access sites.
//!
//! Failure handling: the first panic (assertion, race, deadlock,
//! step-budget blowout) records a message plus the op/decision trace and
//! flips the execution into *abort* mode — every parked thread is woken
//! and unwinds with a private [`Abort`] payload so the whole iteration
//! tears down cleanly before the runner re-reports the failure.

use crate::strategy::{Decision, Strategy};
use crate::vclock::VClock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Atomic-op memory orderings, mirroring `std::sync::atomic::Ordering`.
pub use std::sync::atomic::Ordering;

/// Max stores kept per atomic location; older stores become unreadable
/// (bounded under-exploration, never unsoundness).
const STORE_HISTORY: usize = 64;

/// Sentinel for "no active thread".
const NONE: usize = usize::MAX;

/// Private panic payload used to unwind logical threads when the
/// execution aborts; recognized (and swallowed) by the thread trampoline.
pub(crate) struct Abort;

// ---- thread-local execution context -----------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The executing logical thread's context, if this OS thread is part of a
/// running model.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

// ---- per-object model state -------------------------------------------------

struct StoreRec {
    val: u64,
    /// Writer's clock at the store — "is this store visible/superseding".
    clock: VClock,
    /// Clock published to acquire-readers (None for plain relaxed stores).
    release: Option<VClock>,
}

#[derive(Default)]
struct AtomicState {
    /// Modification order (serialized execution order); index 0 is
    /// absolute index `base`.
    stores: Vec<StoreRec>,
    base: usize,
}

#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
    /// Release clock of the last unlock.
    clock: VClock,
    /// Threads parked in `lock`.
    waiters: Vec<usize>,
}

#[derive(Default)]
struct CondvarState {
    /// Threads parked in `wait`/`wait_timeout` (tid, timed).
    waiters: Vec<(usize, bool)>,
}

#[derive(Default)]
struct CellState {
    /// Last write: (tid, that thread's clock component, full clock, site).
    write: Option<(usize, u32, VClock, &'static Location<'static>)>,
    /// Reads since the last write: tid → (epoch, site).
    reads: HashMap<usize, (u32, &'static Location<'static>)>,
}

// ---- per-thread model state -------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Runnable,
    /// Parked in `Mutex::lock` on the mutex keyed by this address.
    BlockedMutex(usize),
    /// Parked in `Condvar::wait` (`timed` ⇒ a scheduler pick fires the
    /// timeout, so the thread stays schedulable).
    BlockedCondvar {
        cv: usize,
        timed: bool,
    },
    /// Parked in `JoinHandle::join` on this tid.
    BlockedJoin(usize),
    Finished,
}

/// Why a condvar waiter resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Notified,
    TimedOut,
}

struct ThreadState {
    clock: VClock,
    run: RunState,
    /// Where the thread last blocked (for deadlock reports).
    blocked_at: Option<&'static Location<'static>>,
    /// Coherence floor per atomic address: absolute store index below
    /// which this thread may no longer read.
    seen: HashMap<usize, usize>,
    /// Clock snapshot taken at the last `fence(Release)`; attached to
    /// subsequent relaxed stores.
    fence_release: Option<VClock>,
    /// Release clocks picked up by relaxed loads; a `fence(Acquire)`
    /// folds them into the thread clock.
    deferred: VClock,
    wake: Option<Wake>,
}

impl ThreadState {
    fn new() -> Self {
        Self {
            clock: VClock::new(),
            run: RunState::Runnable,
            blocked_at: None,
            seen: HashMap::new(),
            fence_release: None,
            deferred: VClock::new(),
            wake: None,
        }
    }
}

// ---- the execution ----------------------------------------------------------

struct TraceEntry {
    tid: usize,
    desc: String,
    site: &'static Location<'static>,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    active: usize,
    strategy: Box<dyn Strategy>,
    /// Every decision taken, for DFS advancement and replay lines.
    pub(crate) decisions: Vec<Decision>,
    trace: Vec<TraceEntry>,
    pub(crate) failure: Option<String>,
    aborting: bool,
    atomics: HashMap<usize, AtomicState>,
    mutexes: HashMap<usize, MutexState>,
    condvars: HashMap<usize, CondvarState>,
    cells: HashMap<usize, CellState>,
    preemptions: usize,
    preemption_bound: Option<usize>,
    steps: usize,
    max_steps: usize,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    finished: usize,
}

/// One model iteration: the shared state plus the scheduling gate.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    gate: Condvar,
}

impl Execution {
    pub(crate) fn new(
        strategy: Box<dyn Strategy>,
        preemption_bound: Option<usize>,
        max_steps: usize,
    ) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: NONE,
                strategy,
                decisions: Vec::new(),
                trace: Vec::new(),
                failure: None,
                aborting: false,
                atomics: HashMap::new(),
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                cells: HashMap::new(),
                preemptions: 0,
                preemption_bound,
                steps: 0,
                max_steps,
                os_handles: Vec::new(),
                finished: 0,
            }),
            gate: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    // ---- thread lifecycle ---------------------------------------------------

    /// Register a new logical thread (clock seeded from the spawner) and
    /// return its tid. The OS handle is attached via [`Self::attach_handle`].
    pub(crate) fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        let mut ts = ThreadState::new();
        if let Some(p) = parent {
            st.threads[p].clock.tick(p);
            let pc = st.threads[p].clock.clone();
            ts.clock.join(&pc);
        }
        ts.clock.tick(tid);
        st.threads.push(ts);
        st.os_handles.push(None);
        tid
    }

    pub(crate) fn attach_handle(&self, tid: usize, h: std::thread::JoinHandle<()>) {
        self.lock().os_handles[tid] = Some(h);
    }

    /// Hand the baton to `tid` (used by the runner to start thread 0).
    pub(crate) fn kick(&self, tid: usize) {
        let mut st = self.lock();
        st.active = tid;
        self.gate.notify_all();
    }

    /// Block until `tid` is the active thread (the first thing a spawned
    /// thread does). Unwinds with [`Abort`] if the execution is tearing
    /// down.
    pub(crate) fn wait_until_active(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == tid {
                return;
            }
            st = match self.gate.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Mark `tid` finished, wake its joiners and pass the baton.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].clock.tick(tid);
        st.threads[tid].run = RunState::Finished;
        st.finished += 1;
        for ts in st.threads.iter_mut() {
            if ts.run == RunState::BlockedJoin(tid) {
                ts.run = RunState::Runnable;
                ts.blocked_at = None;
            }
        }
        self.reschedule(st, tid, "thread exit", Location::caller());
    }

    /// Logical join: park until `target` finishes, then acquire its final
    /// clock.
    #[track_caller]
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        let site = Location::caller();
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        if st.threads[target].run != RunState::Finished {
            st.threads[tid].run = RunState::BlockedJoin(target);
            st.threads[tid].blocked_at = Some(site);
            let st2 = self.reschedule_keep(st, tid, "join (blocked)", site);
            drop(st2);
            self.wait_until_active(tid);
            st = self.lock();
        }
        let tc = st.threads[target].clock.clone();
        let me = &mut st.threads[tid];
        me.clock.join(&tc);
        me.clock.tick(tid);
        st.trace_push(tid, "join".into(), site);
    }

    /// Park the runner until every logical thread finished or aborted,
    /// then join the OS threads and return the failure, if any.
    pub(crate) fn run_to_completion(&self) -> Option<String> {
        {
            let mut st = self.lock();
            while !(st.aborting && st.active == NONE || st.finished == st.threads.len()) {
                // On abort every parked thread self-wakes; the runner just
                // needs the queue to drain, which `finish`/abort signal.
                st = match self.gate.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if st.aborting {
                    break;
                }
            }
        }
        let handles: Vec<_> = {
            let mut st = self.lock();
            st.os_handles.iter_mut().map(|h| h.take()).collect()
        };
        for h in handles.into_iter().flatten() {
            let _ = h.join();
        }
        let mut st = self.lock();
        st.strategy.finished();
        st.failure.take()
    }

    pub(crate) fn take_decisions(&self) -> Vec<Decision> {
        std::mem::take(&mut self.lock().decisions)
    }

    // ---- scheduling core ----------------------------------------------------

    /// The schedule point run before every operation's effect: pick the
    /// thread that performs the next operation; park the caller if it was
    /// not chosen. Returns with the caller active.
    pub(crate) fn yield_point(&self, tid: usize, site: &'static Location<'static>) {
        if std::thread::panicking() {
            return; // unwinding through user destructors — stay out of the way
        }
        let st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let st = self.schedule_next(st, tid, site);
        drop(st);
        self.wait_until_active(tid);
    }

    /// Choose and publish the next active thread. Caller keeps `tid`'s
    /// run-state as-is (used for blocking ops that already parked
    /// themselves). Returns the guard.
    fn schedule_next<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
        site: &'static Location<'static>,
    ) -> MutexGuard<'a, ExecState> {
        if st.aborting {
            st.active = NONE;
            self.gate.notify_all();
            return st;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "model exceeded {} scheduling steps (livelock or unbounded loop?)",
                st.max_steps
            );
            self.fail_locked(st, msg, site);
        }
        // Runnable set: Runnable threads, plus timed condvar waiters
        // (scheduling one of those fires its timeout).
        let mut candidates: Vec<usize> = Vec::new();
        for (t, ts) in st.threads.iter().enumerate() {
            match ts.run {
                RunState::Runnable => candidates.push(t),
                RunState::BlockedCondvar { timed: true, .. } => candidates.push(t),
                _ => {}
            }
        }
        if candidates.is_empty() {
            if st.finished == st.threads.len() {
                st.active = NONE;
                self.gate.notify_all();
                return st;
            }
            let mut lines = String::new();
            for (t, ts) in st.threads.iter().enumerate() {
                if ts.run != RunState::Finished {
                    lines.push_str(&format!(
                        "\n  thread {t} blocked ({:?}) at {}",
                        ts.run,
                        ts.blocked_at.map_or("?".to_string(), |l| l.to_string())
                    ));
                }
            }
            self.fail_locked(st, format!("deadlock: no runnable thread{lines}"), site);
        }
        // Preemption bounding: once the budget is spent, a still-runnable
        // current thread must keep running.
        let caller_runnable = candidates.contains(&tid);
        let bounded = st
            .preemption_bound
            .is_some_and(|b| st.preemptions >= b && caller_runnable);
        let chosen = if bounded || candidates.len() == 1 {
            if bounded {
                tid
            } else {
                candidates[0]
            }
        } else {
            let idx = st.strategy.choose_schedule(&candidates, tid);
            let c = candidates[idx];
            let n = candidates.len();
            st.decisions.push(Decision { chosen: idx, n });
            c
        };
        if caller_runnable && chosen != tid {
            st.preemptions += 1;
        }
        // A timed condvar waiter scheduled directly: its timeout fires.
        if let RunState::BlockedCondvar { cv, timed: true } = st.threads[chosen].run {
            if let Some(cvs) = st.condvars.get_mut(&cv) {
                cvs.waiters.retain(|&(t, _)| t != chosen);
            }
            st.threads[chosen].run = RunState::Runnable;
            st.threads[chosen].blocked_at = None;
            st.threads[chosen].wake = Some(Wake::TimedOut);
        }
        st.active = chosen;
        self.gate.notify_all();
        st
    }

    /// `schedule_next` for callers that already hold the lock and have
    /// parked themselves (blocking ops).
    fn reschedule_keep<'a>(
        &'a self,
        st: MutexGuard<'a, ExecState>,
        tid: usize,
        desc: &str,
        site: &'static Location<'static>,
    ) -> MutexGuard<'a, ExecState> {
        let mut st = st;
        st.trace_push(tid, desc.to_string(), site);
        self.schedule_next(st, tid, site)
    }

    /// Park-free baton pass used by `finish_thread`.
    fn reschedule(
        &self,
        st: MutexGuard<'_, ExecState>,
        tid: usize,
        desc: &str,
        site: &'static Location<'static>,
    ) {
        let st = self.reschedule_keep(st, tid, desc, site);
        drop(st);
    }

    /// Record a failure, flip into abort mode, wake everyone. Unwinds the
    /// calling logical thread with [`Abort`] (the runner re-reports).
    fn fail_locked(
        &self,
        mut st: MutexGuard<'_, ExecState>,
        msg: String,
        site: &'static Location<'static>,
    ) -> ! {
        if st.failure.is_none() {
            let mut full = format!("{msg}\n    at {site}\n--- last operations ---");
            let lo = st.trace.len().saturating_sub(40);
            for e in &st.trace[lo..] {
                full.push_str(&format!("\n  [t{}] {} at {}", e.tid, e.desc, e.site));
            }
            st.failure = Some(full);
        }
        st.aborting = true;
        st.active = NONE;
        self.gate.notify_all();
        drop(st);
        std::panic::panic_any(Abort);
    }

    /// Record an externally-caught panic (from a logical thread closure).
    pub(crate) fn report_panic(&self, tid: usize, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            let mut full = format!("thread {tid} panicked: {msg}\n--- last operations ---");
            let lo = st.trace.len().saturating_sub(40);
            for e in &st.trace[lo..] {
                full.push_str(&format!("\n  [t{}] {} at {}", e.tid, e.desc, e.site));
            }
            st.failure = Some(full);
        }
        st.aborting = true;
        st.active = NONE;
        self.gate.notify_all();
    }

    fn value_choice(st: &mut ExecState, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let idx = st.strategy.choose_value(n);
        st.decisions.push(Decision { chosen: idx, n });
        idx
    }

    // ---- atomic semantics ---------------------------------------------------

    /// Ensure `addr` has model state, seeding the history with the
    /// location's current (pre-model or post-reset) value.
    fn atomic_entry(st: &mut ExecState, addr: usize, init: u64) -> &mut AtomicState {
        st.atomics.entry(addr).or_insert_with(|| AtomicState {
            stores: vec![StoreRec {
                val: init,
                clock: VClock::new(),
                release: None,
            }],
            base: 0,
        })
    }

    /// Instrumented load. `init` is the location's live value, used to
    /// seed history on first contact.
    pub(crate) fn atomic_load(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        ord: Ordering,
        site: &'static Location<'static>,
    ) -> u64 {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.trace_push(tid, format!("load({ord:?})"), site);
        let reader_clock = st.threads[tid].clock.clone();
        let (newest, mut floor) = {
            let a = Self::atomic_entry(&mut st, addr, init);
            let newest = a.base + a.stores.len() - 1;
            // Coherence floor: nothing older than the newest store that
            // happens-before this load, nor older than what we already read.
            let mut floor = a.base;
            for (i, s) in a.stores.iter().enumerate().rev() {
                if s.clock.le(&reader_clock) {
                    floor = a.base + i;
                    break;
                }
            }
            (newest, floor)
        };
        let seen = st.threads[tid].seen.get(&addr).copied().unwrap_or(0);
        floor = floor.max(seen);
        let chosen_abs = if matches!(ord, Ordering::SeqCst) {
            newest
        } else {
            let n = newest - floor + 1;
            let pick = Self::value_choice(&mut st, n);
            floor + pick
        };
        let a = st.atomics.get(&addr).expect("seeded above");
        let rec = &a.stores[chosen_abs - a.base];
        let val = rec.val;
        let release = rec.release.clone();
        st.threads[tid].seen.insert(addr, chosen_abs);
        if let Some(rc) = release {
            match ord {
                Ordering::Relaxed => st.threads[tid].deferred.join(&rc),
                _ => st.threads[tid].clock.join(&rc),
            }
        }
        st.threads[tid].clock.tick(tid);
        val
    }

    /// Instrumented store. Returns nothing; the caller writes `val` back
    /// to the live location after this returns.
    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        val: u64,
        ord: Ordering,
        site: &'static Location<'static>,
    ) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.trace_push(tid, format!("store({ord:?}, {val})"), site);
        st.threads[tid].clock.tick(tid);
        let release = match ord {
            Ordering::Release | Ordering::SeqCst | Ordering::AcqRel => {
                Some(st.threads[tid].clock.clone())
            }
            _ => st.threads[tid].fence_release.clone(),
        };
        let clock = st.threads[tid].clock.clone();
        Self::atomic_entry(&mut st, addr, init);
        let a = st.atomics.get_mut(&addr).expect("seeded above");
        a.stores.push(StoreRec {
            val,
            clock,
            release,
        });
        if a.stores.len() > STORE_HISTORY {
            a.stores.remove(0);
            a.base += 1;
        }
        let newest = a.base + a.stores.len() - 1;
        st.threads[tid].seen.insert(addr, newest);
    }

    /// Instrumented read-modify-write: applies `op` to the newest value
    /// (RMW atomicity), with optional compare gating for CAS. Returns
    /// `(old, stored)` where `stored` says whether the new value was
    /// written (CAS success).
    #[allow(clippy::too_many_arguments)] // atomic RMW carries op+orderings+site; bundling would obscure call sites
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        addr: usize,
        init: u64,
        expect: Option<u64>,
        new: impl FnOnce(u64) -> u64,
        success: Ordering,
        failure: Ordering,
        site: &'static Location<'static>,
    ) -> (u64, bool) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let (newest_idx, old, prev_release) = {
            let a = Self::atomic_entry(&mut st, addr, init);
            let last = a.stores.last().expect("history never empty");
            (a.base + a.stores.len() - 1, last.val, last.release.clone())
        };
        let ok = expect.is_none_or(|e| e == old);
        let ord = if ok { success } else { failure };
        st.trace_push(tid, format!("rmw({ord:?}, old={old}, ok={ok})"), site);
        st.threads[tid].seen.insert(addr, newest_idx);
        // Acquire side.
        if let Some(rc) = &prev_release {
            match ord {
                Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                    st.threads[tid].clock.join(rc)
                }
                Ordering::Relaxed | Ordering::Release => st.threads[tid].deferred.join(rc),
                _ => {}
            }
        }
        st.threads[tid].clock.tick(tid);
        if !ok {
            return (old, false);
        }
        // Release side: an RMW continues the release sequence it read.
        let mut release = match success {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => {
                Some(st.threads[tid].clock.clone())
            }
            _ => st.threads[tid].fence_release.clone(),
        };
        if let Some(pr) = prev_release {
            match &mut release {
                Some(r) => r.join(&pr),
                None => release = Some(pr),
            }
        }
        let clock = st.threads[tid].clock.clone();
        let val = new(old);
        let a = st.atomics.get_mut(&addr).expect("seeded above");
        a.stores.push(StoreRec {
            val,
            clock,
            release,
        });
        if a.stores.len() > STORE_HISTORY {
            a.stores.remove(0);
            a.base += 1;
        }
        let newest = a.base + a.stores.len() - 1;
        st.threads[tid].seen.insert(addr, newest);
        (old, true)
    }

    /// Instrumented `fence`.
    pub(crate) fn fence(&self, tid: usize, ord: Ordering, site: &'static Location<'static>) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.trace_push(tid, format!("fence({ord:?})"), site);
        st.threads[tid].clock.tick(tid);
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            let d = std::mem::take(&mut st.threads[tid].deferred);
            st.threads[tid].clock.join(&d);
        }
        if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            st.threads[tid].fence_release = Some(st.threads[tid].clock.clone());
        }
    }

    // ---- mutex / condvar semantics ------------------------------------------

    /// Model-acquire the mutex keyed by `addr`, parking while contended.
    pub(crate) fn mutex_lock(&self, tid: usize, addr: usize, site: &'static Location<'static>) {
        loop {
            self.yield_point(tid, site);
            let mut st = self.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(Abort);
            }
            let m = st.mutexes.entry(addr).or_default();
            if m.owner.is_none() {
                m.owner = Some(tid);
                m.waiters.retain(|&t| t != tid);
                let mc = m.clock.clone();
                let me = &mut st.threads[tid];
                me.clock.join(&mc);
                me.clock.tick(tid);
                st.trace_push(tid, "lock".into(), site);
                return;
            }
            if !m.waiters.contains(&tid) {
                m.waiters.push(tid);
            }
            st.threads[tid].run = RunState::BlockedMutex(addr);
            st.threads[tid].blocked_at = Some(site);
            let st = self.reschedule_keep(st, tid, "lock (blocked)", site);
            drop(st);
            self.wait_until_active(tid);
        }
    }

    /// Model-release the mutex keyed by `addr`; wakes all waiters to
    /// re-contend (barging explores acquisition orders).
    pub(crate) fn mutex_unlock(&self, tid: usize, addr: usize, site: &'static Location<'static>) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            return; // effect is moot mid-teardown
        }
        st.threads[tid].clock.tick(tid);
        let release = st.threads[tid].clock.clone();
        let m = st.mutexes.entry(addr).or_default();
        debug_assert_eq!(m.owner, Some(tid), "unlock by non-owner");
        m.owner = None;
        m.clock.join(&release);
        let waiters = std::mem::take(&mut m.waiters);
        for w in waiters {
            if matches!(st.threads[w].run, RunState::BlockedMutex(a) if a == addr) {
                st.threads[w].run = RunState::Runnable;
                st.threads[w].blocked_at = None;
            }
        }
        st.trace_push(tid, "unlock".into(), site);
    }

    /// Atomically release `mutex_addr` and park on `cv_addr`. Returns the
    /// wake reason once rescheduled; the caller then re-acquires the
    /// mutex via [`Self::mutex_lock`].
    pub(crate) fn condvar_wait(
        &self,
        tid: usize,
        cv_addr: usize,
        mutex_addr: usize,
        timed: bool,
        site: &'static Location<'static>,
    ) -> Wake {
        self.yield_point(tid, site);
        {
            let mut st = self.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(Abort);
            }
            // Release the mutex (same effect as unlock, minus the yield).
            st.threads[tid].clock.tick(tid);
            let release = st.threads[tid].clock.clone();
            let m = st.mutexes.entry(mutex_addr).or_default();
            debug_assert_eq!(m.owner, Some(tid), "wait with mutex not held");
            m.owner = None;
            m.clock.join(&release);
            let waiters = std::mem::take(&mut m.waiters);
            for w in waiters {
                if matches!(st.threads[w].run, RunState::BlockedMutex(a) if a == mutex_addr) {
                    st.threads[w].run = RunState::Runnable;
                    st.threads[w].blocked_at = None;
                }
            }
            let cv = st.condvars.entry(cv_addr).or_default();
            cv.waiters.push((tid, timed));
            st.threads[tid].run = RunState::BlockedCondvar { cv: cv_addr, timed };
            st.threads[tid].blocked_at = Some(site);
            st.threads[tid].wake = None;
            let desc = if timed { "wait_timeout" } else { "wait" };
            let st = self.reschedule_keep(st, tid, desc, site);
            drop(st);
        }
        self.wait_until_active(tid);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let wake = st.threads[tid].wake.take().unwrap_or(Wake::Notified);
        st.trace_push(tid, format!("woke ({wake:?})"), site);
        wake
    }

    /// Wake one waiter on `cv_addr` (which one is an explored decision).
    pub(crate) fn condvar_notify(
        &self,
        tid: usize,
        cv_addr: usize,
        all: bool,
        site: &'static Location<'static>,
    ) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        st.threads[tid].clock.tick(tid);
        let n_waiters = st.condvars.get(&cv_addr).map_or(0, |cv| cv.waiters.len());
        let desc = if all { "notify_all" } else { "notify_one" };
        st.trace_push(tid, format!("{desc} ({n_waiters} waiting)"), site);
        if n_waiters == 0 {
            return;
        }
        let picked: Vec<usize> = if all {
            let cv = st.condvars.get_mut(&cv_addr).expect("checked above");
            cv.waiters.drain(..).map(|(t, _)| t).collect()
        } else {
            let idx = Self::value_choice(&mut st, n_waiters);
            let cv = st.condvars.get_mut(&cv_addr).expect("checked above");
            vec![cv.waiters.remove(idx).0]
        };
        for t in picked {
            if matches!(st.threads[t].run, RunState::BlockedCondvar { cv, .. } if cv == cv_addr) {
                st.threads[t].run = RunState::Runnable;
                st.threads[t].blocked_at = None;
                st.threads[t].wake = Some(Wake::Notified);
            }
        }
    }

    // ---- race-checked plain data --------------------------------------------

    /// Record a read of the `RaceCell` keyed by `addr`; fails the model if
    /// it conflicts with an unordered write.
    pub(crate) fn cell_read(&self, tid: usize, addr: usize, site: &'static Location<'static>) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock.clone();
        let epoch = clock.get(tid);
        let c = st.cells.entry(addr).or_default();
        if let Some((wt, wep, wclock, wsite)) = &c.write {
            if !wclock.le(&clock) {
                let (wt, wep, wsite) = (*wt, *wep, *wsite);
                let msg = format!(
                    "data race: read by thread {tid} at {site} is unordered with \
                     write by thread {wt} (epoch {wep}) at {wsite}"
                );
                self.fail_locked(st, msg, site);
            }
        }
        c.reads.insert(tid, (epoch, site));
        st.trace_push(tid, "cell read".into(), site);
    }

    /// Record a write of the `RaceCell` keyed by `addr`; fails the model
    /// if it conflicts with an unordered read or write.
    pub(crate) fn cell_write(&self, tid: usize, addr: usize, site: &'static Location<'static>) {
        self.yield_point(tid, site);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock.clone();
        let c = st.cells.entry(addr).or_default();
        if let Some((wt, wep, wclock, wsite)) = &c.write {
            if !wclock.le(&clock) {
                let (wt, wep, wsite) = (*wt, *wep, *wsite);
                let msg = format!(
                    "data race: write by thread {tid} at {site} is unordered with \
                     write by thread {wt} (epoch {wep}) at {wsite}"
                );
                self.fail_locked(st, msg, site);
            }
        }
        // Lowest-tid pick keeps the report deterministic across replays
        // (HashMap iteration order is not).
        let stale = c
            .reads
            .iter()
            .map(|(&t, &(ep, s))| (t, ep, s))
            .filter(|&(t, ep, _)| ep > clock.get(t))
            .min_by_key(|&(t, _, _)| t);
        if let Some((rt, rep, rsite)) = stale {
            let msg = format!(
                "data race: write by thread {tid} at {site} is unordered with \
                 read by thread {rt} (epoch {rep}) at {rsite}"
            );
            self.fail_locked(st, msg, site);
        }
        let c = st.cells.entry(addr).or_default();
        c.write = Some((tid, clock.get(tid), clock, site));
        c.reads.clear();
        st.trace_push(tid, "cell write".into(), site);
    }
}

impl ExecState {
    fn trace_push(&mut self, tid: usize, desc: String, site: &'static Location<'static>) {
        // Bound the trace: keep the most recent window only.
        if self.trace.len() >= 4096 {
            self.trace.drain(..2048);
        }
        self.trace.push(TraceEntry { tid, desc, site });
    }
}
