//! Poison-ignoring wrappers over `std::sync` primitives — and the
//! workspace's *model-checking seam*.
//!
//! The workspace previously used `parking_lot`; with the dependency gone,
//! these wrappers keep call sites terse (`lock()` returns the guard
//! directly) while deliberately ignoring lock poisoning: a panic while
//! holding a fabric lock already aborts the owning test/benchmark, and the
//! protected state (match queues, handle tables) stays structurally valid.
//!
//! Under `--cfg mpicd_check` the lock types and the [`atomic`] module
//! resolve to the instrumented primitives from `mpicd-check` instead, so
//! every crate that takes its synchronization vocabulary from here
//! (`obs::flight`, `fabric::pipeline`, …) becomes model-checkable without
//! touching its protocol code. Normal builds keep the raw std types —
//! the seam is type aliasing, not indirection, so it costs nothing.

#[cfg(not(mpicd_check))]
use std::sync::{self, LockResult};
#[cfg(not(mpicd_check))]
use std::time::Duration;

/// Atomics for lock-free protocol code. Import from here (not
/// `std::sync::atomic`) in any module that wants its protocols
/// model-checked; the ordering-audit test in `mpicd-bench` enforces this
/// for the checked modules.
pub mod atomic {
    #[cfg(mpicd_check)]
    pub use mpicd_check::sync::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
    #[cfg(not(mpicd_check))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Instrumented lock types under `--cfg mpicd_check` (same poison-ignoring
/// API, plus every operation is a model schedule point).
#[cfg(mpicd_check)]
pub use mpicd_check::sync::{Condvar, Mutex, MutexGuard};

/// A mutex whose `lock` ignores poisoning and returns the guard directly.
#[cfg(not(mpicd_check))]
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
#[cfg(not(mpicd_check))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

#[cfg(not(mpicd_check))]
fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(not(mpicd_check))]
impl<T> Mutex<T> {
    /// New mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

/// Condition variable paired with [`Mutex`]; `wait` ignores poisoning.
#[cfg(not(mpicd_check))]
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

#[cfg(not(mpicd_check))]
impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    /// Consumes and returns the guard (std style).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        ignore_poison(self.0.wait(guard))
    }

    /// Like [`Self::wait`] with a timeout; returns the reacquired guard
    /// and whether the wait timed out (poison ignored).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, res) = match self.0.wait_timeout(guard, dur) {
            Ok(x) => x,
            Err(p) => p.into_inner(),
        };
        (g, res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose accessors ignore poisoning. Always the std
/// lock: no checked protocol uses reader-writer locking, so it has no
/// instrumented counterpart.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock around `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_times_out_without_notify() {
        let pair = (Mutex::new(()), Condvar::new());
        let (g, timed_out) = pair.1.wait_timeout(pair.0.lock(), Duration::from_millis(5));
        drop(g);
        assert!(timed_out, "nobody notifies, so the wait must time out");
    }

    #[test]
    fn wait_timeout_returns_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            let mut timed_out = false;
            while !*ready && !timed_out {
                let (g, to) = cv.wait_timeout(ready, Duration::from_secs(60));
                ready = g;
                timed_out = to;
            }
            assert!(*ready, "woken by the notify, not the 60s timeout");
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poisoning is ignored");
    }

    #[test]
    fn poisoned_get_mut_and_into_inner_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        let mut m = Arc::into_inner(m).expect("sole owner after join");
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 8, "get_mut/into_inner ignore poisoning");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn atomic_module_resolves() {
        use super::atomic::{fence, AtomicU64, Ordering};
        let a = AtomicU64::new(1);
        a.fetch_add(1, Ordering::AcqRel);
        fence(Ordering::Acquire);
        assert_eq!(a.load(Ordering::Acquire), 2);
    }
}
