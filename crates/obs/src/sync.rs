//! Poison-ignoring wrappers over `std::sync` primitives.
//!
//! The workspace previously used `parking_lot`; with the dependency gone,
//! these wrappers keep call sites terse (`lock()` returns the guard
//! directly) while deliberately ignoring lock poisoning: a panic while
//! holding a fabric lock already aborts the owning test/benchmark, and the
//! protected state (match queues, handle tables) stays structurally valid.

use std::sync::{self, LockResult};

/// A mutex whose `lock` ignores poisoning and returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// New mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

/// Condition variable paired with [`Mutex`]; `wait` ignores poisoning.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    /// Consumes and returns the guard (std style).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        ignore_poison(self.0.wait(guard))
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose accessors ignore poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock around `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poisoning is ignored");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
