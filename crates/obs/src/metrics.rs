//! Metrics registry: named counters and log2-bucketed histograms.
//!
//! Counters are relaxed atomic adds — the same cost class as the fabric's
//! traffic counters, so they stay on even when span tracing is off.
//! Histograms bucket by `floor(log2(v)) + 1` (bucket 0 holds exact zeros),
//! giving 65 buckets that cover the full `u64` range; summaries report
//! count/sum/mean, exact max, and p50/p99 as bucket upper bounds.
//!
//! Callers obtain `Arc` handles once (at construction time) and hold them
//! on hot paths; the registry's internal map lock is only taken at
//! lookup/snapshot time.

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of histogram buckets: zeros + one per log2 magnitude of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for value `v`: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (0 for bucket 0, `2^i - 1` above,
/// saturating at `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in ns, sizes in
/// bytes). Thread-safe; all updates are relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn summary(&self) -> HistSummary {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSummary {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A copied-out histogram state with derived statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wraps only past `u64::MAX` total).
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSummary {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistSummary {
    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `q` in `[0, 1]`, reported as the inclusive upper bound of
    /// the bucket containing it (0 for an empty histogram). The bucketed
    /// value can overestimate by at most 2× — the standard log2-histogram
    /// trade-off.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                // Never report beyond the exact max.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Samples recorded since `earlier` (per-bucket saturating difference;
    /// `max` keeps this summary's value as an upper bound for the window).
    pub fn since(&self, earlier: &HistSummary) -> HistSummary {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, (s, e)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *b = s.saturating_sub(*e);
        }
        HistSummary {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets,
        }
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// New empty registry (the process-global one is [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`. Hold the returned handle on
    /// hot paths instead of re-looking it up.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Copy out every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v.summary()))
                .collect(),
        }
    }
}

/// The process-global registry used by all mpicd crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A copied-out view of a [`Registry`] at one point in time.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms.get(name)
    }

    /// Activity since `earlier` (saturating per metric; metrics absent
    /// from `earlier` are treated as starting at zero).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let diff = match earlier.histograms.get(k) {
                    Some(e) => v.since(e),
                    None => v.clone(),
                };
                (k.clone(), diff)
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [1u64, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 1 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_edge_values() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.buckets[1], 1, "one lands in bucket 1");
        assert_eq!(s.buckets[64], 1, "u64::MAX lands in the top bucket");
        // 0 + 1 + MAX wraps; sum is still the wrapped total of the adds.
        assert_eq!(s.sum, u64::MAX.wrapping_add(1));
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 15
        }
        h.record(1 << 20); // one outlier
        let s = h.summary();
        assert_eq!(s.p50(), 15, "median reported as bucket upper bound");
        assert_eq!(s.p99(), 15, "99th within the bulk");
        assert_eq!(s.quantile(1.0), 1 << 20);
        assert_eq!(s.max, 1 << 20);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantile_never_exceeds_exact_max() {
        let h = Histogram::new();
        h.record(9); // bucket 4 has upper bound 15
        let s = h.summary();
        assert_eq!(s.p99(), 9, "clamped to exact max");
    }

    #[test]
    fn summary_since_subtracts() {
        let h = Histogram::new();
        h.record(5);
        let a = h.summary();
        h.record(5);
        h.record(100);
        let d = h.summary().since(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 105);
        assert_eq!(d.buckets[bucket_index(5)], 1);
        assert_eq!(d.buckets[bucket_index(100)], 1);
    }

    #[test]
    fn registry_returns_same_instance() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        assert_eq!(b.get(), 3);
        let h1 = r.histogram("h");
        let h2 = r.histogram("h");
        h1.record(7);
        assert_eq!(h2.summary().count, 1);
    }

    #[test]
    fn snapshot_since_handles_new_metrics() {
        let r = Registry::new();
        r.counter("a").add(10);
        let early = r.snapshot();
        r.counter("a").add(5);
        r.counter("b").add(2);
        r.histogram("h").record(8);
        let d = r.snapshot().since(&early);
        assert_eq!(d.counter("a"), 5);
        assert_eq!(d.counter("b"), 2, "metric absent earlier counts fully");
        assert_eq!(d.histogram("h").unwrap().count, 1);
        assert_eq!(d.counter("missing"), 0);
    }
}
