//! Continuous telemetry: windowed time-series counters and streaming
//! p50/p99 quantile sketches with a Prometheus-style text exposition.
//!
//! The span tracer and flight recorder are *post-mortem* tools: they
//! record, the run ends, an analyzer replays the dump. Soak runs and
//! scale-out experiments need the opposite — cheap, always-on series that
//! can be scraped while the process lives. This module provides exactly
//! two primitives:
//!
//! * [`Series`] — a windowed time-series counter. Each add lands in the
//!   wall-clock window of width `MPICD_TELEMETRY_WINDOW_MS` (default
//!   1000 ms); the last [`WINDOWS`] windows are retained in a fixed ring,
//!   alongside cumulative totals.
//! * [`Sketch`] — a streaming quantile sketch over `u64` samples:
//!   log-linear buckets (exact below 16, then 4 sub-buckets per octave,
//!   ≤ 25% relative error) plus count/sum/max, answering p50/p99 at any
//!   moment without storing samples.
//! * [`Gauge`] — an instantaneous level with a high-water mark: bounded
//!   resources (freelists, queue depths, slab occupancy) report their
//!   current value via set/add/sub, and the exposition carries both the
//!   live level and the highest level ever observed.
//!
//! **Cost model.** Disabled (the default), [`Series::add`],
//! [`Sketch::record`] and the gauge mutators are one relaxed atomic load
//! — the same discipline
//! as [`crate::flight`]. Enabled, they are a handful of relaxed atomic
//! RMWs on pre-allocated slots: registration ([`series`]/[`sketch`])
//! allocates once behind a lock, the hot path never allocates and never
//! locks. Handles are `Arc`s; cache them, don't re-look them up per
//! event.
//!
//! [`crate::flush`] renders every registered instrument in Prometheus
//! text-exposition format to `MPICD_TELEMETRY_PATH` (default
//! `mpicd-telemetry.prom`) when telemetry is enabled
//! (`MPICD_TELEMETRY=1` or [`set_enabled`]).

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Mutex;
use crate::time::now_ns;
use std::collections::BTreeMap;
use std::sync::{Arc, Once, OnceLock};

/// Windows retained by a [`Series`] ring (current plus history).
pub const WINDOWS: usize = 8;

/// Quantile-sketch bucket count: 16 exact values, then 4 sub-buckets per
/// octave up to `u64::MAX`.
pub const SKETCH_BUCKETS: usize = 256;

// ---- enable flag ------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if crate::config::current().telemetry {
            ENABLED.store(true, Ordering::Relaxed);
        }
        // MPICD_HEALTH_MS rides the first telemetry touch: the health
        // thread only reports registry contents, so starting it here
        // (rather than at some explicit init call nobody makes) means
        // env-only runs get live snapshots too.
        crate::health::ensure_started();
    });
}

/// Whether telemetry is currently enabled.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable telemetry at runtime (overrides `MPICD_TELEMETRY`).
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// Timestamp helper for externally-timed sections: [`now_ns`] when
/// telemetry is on, else 0 without touching the clock (one relaxed load,
/// mirroring [`crate::flight::clock`]).
#[inline]
pub fn clock() -> u64 {
    if enabled() {
        now_ns()
    } else {
        0
    }
}

// ---- windowed counter -------------------------------------------------------

struct Window {
    /// Wall-clock window index this slot currently holds, or `u64::MAX`
    /// when never written.
    epoch: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A windowed time-series counter with cumulative totals.
///
/// Adds are attributed to the wall-clock window `now_ns / window_ns`;
/// the ring keeps the [`WINDOWS`] most recent windows. Window turnover is
/// advisory: an add racing a turnover may land in either neighbouring
/// window (never lost from the cumulative totals). Obtain instances via
/// [`series`].
pub struct Series {
    window_ns: u64,
    windows: [Window; WINDOWS],
    total_count: AtomicU64,
    total_sum: AtomicU64,
}

impl std::fmt::Debug for Series {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (count, sum) = self.totals();
        f.debug_struct("Series")
            .field("window_ns", &self.window_ns)
            .field("count", &count)
            .field("sum", &sum)
            .finish()
    }
}

impl Series {
    /// A standalone series not registered anywhere (unit tests, detached
    /// metrics); `window_ns` is the window width in nanoseconds.
    pub fn standalone(window_ns: u64) -> Self {
        Self::new(window_ns)
    }

    fn new(window_ns: u64) -> Self {
        Self {
            window_ns: window_ns.max(1),
            windows: std::array::from_fn(|_| Window {
                epoch: AtomicU64::new(u64::MAX),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
            total_count: AtomicU64::new(0),
            total_sum: AtomicU64::new(0),
        }
    }

    /// Add `v` to the current window. One relaxed atomic load when
    /// telemetry is disabled.
    #[inline]
    pub fn add(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.observe(v);
    }

    /// Ungated [`Self::add`] — records regardless of the enable flag.
    /// The enabled-path implementation, and the seam unit tests use.
    pub fn observe(&self, v: u64) {
        let epoch = now_ns() / self.window_ns;
        let w = &self.windows[(epoch % WINDOWS as u64) as usize];
        let cur = w.epoch.load(Ordering::Relaxed);
        if cur != epoch
            && w.epoch
                .compare_exchange(cur, epoch, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            // This thread turned the window over; reset its accumulators.
            w.count.store(0, Ordering::Relaxed);
            w.sum.store(0, Ordering::Relaxed);
        }
        w.count.fetch_add(1, Ordering::Relaxed);
        w.sum.fetch_add(v, Ordering::Relaxed);
        self.total_count.fetch_add(1, Ordering::Relaxed);
        self.total_sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Cumulative `(count, sum)` since process start.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.total_count.load(Ordering::Relaxed),
            self.total_sum.load(Ordering::Relaxed),
        )
    }

    /// `(count, sum)` of the most recent *complete* window, i.e. the
    /// window before the one `now` falls in — `(0, 0)` if it recorded
    /// nothing.
    pub fn last_window(&self) -> (u64, u64) {
        let epoch = (now_ns() / self.window_ns).wrapping_sub(1);
        self.window(epoch)
    }

    /// `(count, sum)` of the window currently being filled.
    pub fn current_window(&self) -> (u64, u64) {
        self.window(now_ns() / self.window_ns)
    }

    fn window(&self, epoch: u64) -> (u64, u64) {
        let w = &self.windows[(epoch % WINDOWS as u64) as usize];
        if w.epoch.load(Ordering::Acquire) != epoch {
            return (0, 0);
        }
        (
            w.count.load(Ordering::Relaxed),
            w.sum.load(Ordering::Relaxed),
        )
    }

    /// The configured window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

// ---- streaming quantile sketch ----------------------------------------------

/// Bucket index for sample `v`: exact below 16, then 4 log-linear
/// sub-buckets per power of two (≤ 25% relative error on the bound).
fn sketch_bucket(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (octave - 2)) & 3) as usize;
    (16 + (octave - 4) * 4 + sub).min(SKETCH_BUCKETS - 1)
}

/// Largest sample that lands in bucket `i` (inclusive upper bound).
fn sketch_bound(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let octave = 4 + (i - 16) / 4;
    let sub = ((i - 16) % 4) as u128;
    // Bucket covers [ (4+sub) << (octave-2), (5+sub) << (octave-2) );
    // the top bucket's open end exceeds u64, so compute in u128 and clamp.
    let bound = ((5 + sub) << (octave - 2)) - 1;
    bound.min(u64::MAX as u128) as u64
}

/// A streaming p50/p99 quantile sketch over `u64` samples.
///
/// Fixed [`SKETCH_BUCKETS`] log-linear buckets plus count/sum/max; no
/// per-sample allocation, wait-free recording. Quantiles come back as the
/// bucket's inclusive upper bound (≤ 25% above the true value), clamped
/// to the exact observed maximum. Obtain instances via [`sketch`].
pub struct Sketch {
    buckets: Box<[AtomicU64; SKETCH_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Sketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sketch")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Sketch {
    /// A standalone sketch not registered anywhere (unit tests, detached
    /// metrics).
    pub fn standalone() -> Self {
        Self::new()
    }

    fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record a sample. One relaxed atomic load when telemetry is
    /// disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.observe(v);
    }

    /// Ungated [`Self::record`] — records regardless of the enable flag.
    pub fn observe(&self, v: u64) {
        self.buckets[sketch_bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample observed (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound clamped
    /// to the exact max; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return sketch_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Snapshot of the raw bucket counters (cumulative). Two snapshots
    /// taken a window apart can be differenced and fed to
    /// [`quantile_from_counts`] to answer *windowed* quantiles — the live
    /// p50/p99 a soak harness reports per reporting interval.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The `q`-quantile of a bucket-count vector in [`Sketch`] bucket space
/// (e.g. the element-wise difference of two [`Sketch::bucket_counts`]
/// snapshots). Returns the bucket's inclusive upper bound; 0 when the
/// counts are empty.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return sketch_bound(i.min(SKETCH_BUCKETS - 1));
        }
    }
    sketch_bound(SKETCH_BUCKETS - 1)
}

// ---- gauge ------------------------------------------------------------------

/// An instantaneous level with a high-water mark.
///
/// Gauges track bounded resources — freelist occupancy, queue depth, slab
/// live counts — where the *current* value and the *highest value ever
/// reached* both matter: the former for zero-growth assertions, the
/// latter for capacity sizing. Values are non-negative; [`Gauge::sub`]
/// saturates at 0 rather than wrapping. Obtain instances via [`gauge`].
pub struct Gauge {
    value: AtomicU64,
    hwm: AtomicU64,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.get())
            .field("hwm", &self.high_water())
            .finish()
    }
}

impl Gauge {
    /// A standalone gauge not registered anywhere (unit tests, detached
    /// metrics).
    pub fn standalone() -> Self {
        Self::new()
    }

    fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
        }
    }

    /// Set the level to `v`. One relaxed atomic load when telemetry is
    /// disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.observe_set(v);
    }

    /// Raise the level by `v`. One relaxed atomic load when telemetry is
    /// disabled.
    #[inline]
    pub fn add(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.observe_add(v);
    }

    /// Lower the level by `v` (saturating at 0). One relaxed atomic load
    /// when telemetry is disabled.
    #[inline]
    pub fn sub(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.observe_sub(v);
    }

    /// Ungated [`Self::set`] — applies regardless of the enable flag.
    pub fn observe_set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Ungated [`Self::add`] — applies regardless of the enable flag.
    pub fn observe_add(&self, v: u64) {
        let now = self.value.fetch_add(v, Ordering::Relaxed).wrapping_add(v);
        self.hwm.fetch_max(now, Ordering::Relaxed);
    }

    /// Ungated [`Self::sub`] — applies regardless of the enable flag,
    /// saturating at 0.
    pub fn observe_sub(&self, v: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                Some(c.saturating_sub(v))
            });
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever observed.
    pub fn high_water(&self) -> u64 {
        self.hwm.load(Ordering::Relaxed)
    }
}

// ---- registry ---------------------------------------------------------------

enum Instrument {
    Series(Arc<Series>),
    Sketch(Arc<Sketch>),
    Gauge(Arc<Gauge>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Self::Series(_) => "series",
            Self::Sketch(_) => "sketch",
            Self::Gauge(_) => "gauge",
        }
    }
}

struct Registry {
    instruments: Mutex<BTreeMap<&'static str, Instrument>>,
    window_ns: u64,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        instruments: Mutex::new(BTreeMap::new()),
        window_ns: crate::config::current()
            .telemetry_window_ms
            .saturating_mul(1_000_000)
            .max(1),
    })
}

/// The windowed counter registered under `name` (dotted lowercase, e.g.
/// `"fabric.messages"`), creating it on first use. Registration takes a
/// lock; cache the handle. Panics if `name` is already a different kind.
pub fn series(name: &'static str) -> Arc<Series> {
    let reg = registry();
    let mut map = reg.instruments.lock();
    match map
        .entry(name)
        .or_insert_with(|| Instrument::Series(Arc::new(Series::new(reg.window_ns))))
    {
        Instrument::Series(s) => Arc::clone(s),
        other => panic!("telemetry name {name:?} is already a {}", other.kind()),
    }
}

/// The quantile sketch registered under `name` (dotted lowercase, e.g.
/// `"fabric.wire_ns"`), creating it on first use. Registration takes a
/// lock; cache the handle. Panics if `name` is already a different kind.
pub fn sketch(name: &'static str) -> Arc<Sketch> {
    let reg = registry();
    let mut map = reg.instruments.lock();
    match map
        .entry(name)
        .or_insert_with(|| Instrument::Sketch(Arc::new(Sketch::new())))
    {
        Instrument::Sketch(s) => Arc::clone(s),
        other => panic!("telemetry name {name:?} is already a {}", other.kind()),
    }
}

/// The gauge registered under `name` (dotted lowercase, e.g.
/// `"fabric.bounce_pool"`), creating it on first use. Registration takes
/// a lock; cache the handle. Panics if `name` is already a different
/// kind.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    let reg = registry();
    let mut map = reg.instruments.lock();
    match map
        .entry(name)
        .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
    {
        Instrument::Gauge(g) => Arc::clone(g),
        other => panic!("telemetry name {name:?} is already a {}", other.kind()),
    }
}

// ---- Prometheus exposition --------------------------------------------------

/// `fabric.wire_ns` → `mpicd_fabric_wire_ns` (metric-name charset).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("mpicd_");
    for c in name.chars() {
        out.push(match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => c,
            _ => '_',
        });
    }
    out
}

/// Render every registered instrument in Prometheus text-exposition
/// format. Sketches render as `summary` metrics (p50/p99 quantiles, sum,
/// count, max gauge); series render as `counter` totals plus a
/// `_window` gauge pair (count/sum of the last complete window); gauges
/// render as a `gauge` pair (live level plus `_hwm` high-water mark).
pub fn render_prometheus() -> String {
    let reg = registry();
    let map = reg.instruments.lock();
    let mut out = String::with_capacity(256 + map.len() * 256);
    out.push_str(&format!(
        "# mpicd telemetry exposition (window_ms={})\n",
        reg.window_ns / 1_000_000
    ));
    for (name, inst) in map.iter() {
        let p = prom_name(name);
        match inst {
            Instrument::Sketch(s) => {
                out.push_str(&format!("# TYPE {p} summary\n"));
                out.push_str(&format!("{p}{{quantile=\"0.5\"}} {}\n", s.p50()));
                out.push_str(&format!("{p}{{quantile=\"0.99\"}} {}\n", s.p99()));
                out.push_str(&format!("{p}_sum {}\n", s.sum()));
                out.push_str(&format!("{p}_count {}\n", s.count()));
                out.push_str(&format!("# TYPE {p}_max gauge\n{p}_max {}\n", s.max()));
            }
            Instrument::Series(s) => {
                let (count, sum) = s.totals();
                let (wc, ws) = s.last_window();
                out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {count}\n"));
                out.push_str(&format!("# TYPE {p}_sum counter\n{p}_sum {sum}\n"));
                out.push_str(&format!("# TYPE {p}_window gauge\n"));
                out.push_str(&format!("{p}_window{{stat=\"count\"}} {wc}\n"));
                out.push_str(&format!("{p}_window{{stat=\"sum\"}} {ws}\n"));
            }
            Instrument::Gauge(g) => {
                out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", g.get()));
                out.push_str(&format!(
                    "# TYPE {p}_hwm gauge\n{p}_hwm {}\n",
                    g.high_water()
                ));
            }
        }
    }
    out
}

/// Render every registered instrument as one health-snapshot JSON object
/// (no trailing newline): the line format of the `MPICD_HEALTH_MS`
/// snapshot stream read back by `mpicd-inspect health`.
pub fn render_health_json() -> String {
    use std::fmt::Write as _;
    let reg = registry();
    let map = reg.instruments.lock();
    let mut gauges = String::new();
    let mut series_out = String::new();
    let mut sketches = String::new();
    for (name, inst) in map.iter() {
        match inst {
            Instrument::Gauge(g) => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                let _ = write!(
                    gauges,
                    "\"{name}\":{{\"value\":{},\"hwm\":{}}}",
                    g.get(),
                    g.high_water()
                );
            }
            Instrument::Series(s) => {
                if !series_out.is_empty() {
                    series_out.push(',');
                }
                let (count, sum) = s.totals();
                let (wc, ws) = s.last_window();
                let _ = write!(
                    series_out,
                    "\"{name}\":{{\"count\":{count},\"sum\":{sum},\
                     \"window_count\":{wc},\"window_sum\":{ws}}}"
                );
            }
            Instrument::Sketch(s) => {
                if !sketches.is_empty() {
                    sketches.push(',');
                }
                let _ = write!(
                    sketches,
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\
                     \"p99\":{},\"max\":{}}}",
                    s.count(),
                    s.sum(),
                    s.p50(),
                    s.p99(),
                    s.max()
                );
            }
        }
    }
    format!(
        "{{\"kind\":\"health\",\"t_ns\":{},\"window_ms\":{},\
         \"gauges\":{{{gauges}}},\"series\":{{{series_out}}},\
         \"sketches\":{{{sketches}}}}}",
        now_ns(),
        reg.window_ns / 1_000_000,
    )
}

/// Write [`render_prometheus`] to `path` atomically (staged as
/// `<path>.tmp`, then renamed — a concurrent scraper never sees a torn
/// exposition).
pub fn write_prometheus(path: &std::path::Path) -> std::io::Result<()> {
    crate::fsio::write_atomic(path, render_prometheus().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag is process-wide; unit tests exercise the ungated
    // `observe` paths and pure bucket math. Gated end-to-end behaviour
    // lives in the crate's integration tests (own processes).

    #[test]
    fn bucket_math_brackets_every_octave() {
        let mut prev_bound = None;
        for i in 0..SKETCH_BUCKETS {
            let b = sketch_bound(i);
            if let Some(p) = prev_bound {
                assert!(b > p, "bounds strictly increase at bucket {i}");
            }
            prev_bound = Some(b);
            // The bound itself must land in its own bucket.
            assert_eq!(sketch_bucket(b), i, "bound of bucket {i} roundtrips");
        }
        for v in [0u64, 1, 15, 16, 17, 100, 1024, 1 << 20, u64::MAX / 2] {
            let i = sketch_bucket(v);
            assert!(sketch_bound(i) >= v, "upper bound covers {v}");
            if i > 0 {
                assert!(sketch_bound(i - 1) < v, "lower neighbour excludes {v}");
            }
            // ≤ 25% relative error from the log-linear sub-buckets.
            assert!(sketch_bound(i) as f64 <= v as f64 * 1.25 + 1.0);
        }
        assert_eq!(sketch_bucket(u64::MAX), SKETCH_BUCKETS - 1);
    }

    #[test]
    fn sketch_quantiles_track_a_known_distribution() {
        let s = Sketch::new();
        for v in 1..=100u64 {
            s.observe(v * 10);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 50_500);
        assert_eq!(s.max(), 1000);
        let p50 = s.p50();
        assert!((450..=650).contains(&p50), "p50 ≈ 500, got {p50}");
        let p99 = s.p99();
        assert!((950..=1000).contains(&p99), "p99 ≈ 990, got {p99}");
        assert_eq!(s.quantile(1.0), 1000, "p100 is the exact max");
    }

    #[test]
    fn empty_sketch_is_zeroed() {
        let s = Sketch::new();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn series_accumulates_and_windows() {
        // A huge window keeps every add in the current window.
        let s = Series::new(u64::MAX);
        s.observe(5);
        s.observe(7);
        assert_eq!(s.totals(), (2, 12));
        assert_eq!(s.current_window(), (2, 12));
        assert_eq!(s.last_window(), (0, 0), "no previous window yet");
    }

    #[test]
    fn series_turns_windows_over() {
        // A 1ns window: consecutive adds land in different windows, but
        // the cumulative totals never lose an add.
        let s = Series::new(1);
        for _ in 0..50 {
            s.observe(1);
        }
        assert_eq!(s.totals(), (50, 50));
        let (cur_count, _) = s.current_window();
        assert!(cur_count <= 50);
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("fabric.wire_ns"), "mpicd_fabric_wire_ns");
        assert_eq!(prom_name("coll.op-rate"), "mpicd_coll_op_rate");
    }

    #[test]
    fn exposition_contains_registered_instruments() {
        sketch("test.expo_sketch").observe(42);
        series("test.expo_series").observe(7);
        let text = render_prometheus();
        assert!(text.contains("# TYPE mpicd_test_expo_sketch summary"));
        assert!(text.contains("mpicd_test_expo_sketch{quantile=\"0.99\"}"));
        assert!(text.contains("mpicd_test_expo_series_total 1"));
        assert!(text.contains("mpicd_test_expo_series_sum 7"));
    }

    #[test]
    fn registry_returns_same_instance() {
        let a = sketch("test.same_sketch");
        let b = sketch("test.same_sketch");
        assert!(Arc::ptr_eq(&a, &b));
        let c = series("test.same_series");
        let d = series("test.same_series");
        assert!(Arc::ptr_eq(&c, &d));
        let e = gauge("test.same_gauge");
        let f = gauge("test.same_gauge");
        assert!(Arc::ptr_eq(&e, &f));
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::standalone();
        g.observe_add(5);
        g.observe_add(3);
        assert_eq!(g.get(), 8);
        assert_eq!(g.high_water(), 8);
        g.observe_sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8, "hwm is sticky");
        g.observe_sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.observe_set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.high_water(), 8, "set below hwm leaves it");
        g.observe_set(20);
        assert_eq!(g.high_water(), 20, "set above hwm raises it");
    }

    #[test]
    fn gauge_renders_in_exposition_and_health_json() {
        let g = gauge("test.expo_gauge");
        g.observe_add(7);
        g.observe_sub(3);
        let text = render_prometheus();
        assert!(text.contains("# TYPE mpicd_test_expo_gauge gauge"));
        assert!(text.contains("mpicd_test_expo_gauge 4\n"));
        assert!(text.contains("mpicd_test_expo_gauge_hwm 7\n"));
        let health = render_health_json();
        assert!(health.starts_with("{\"kind\":\"health\","));
        assert!(health.contains("\"test.expo_gauge\":{\"value\":4,\"hwm\":7}"));
    }

    #[test]
    fn windowed_quantiles_from_bucket_deltas() {
        let s = Sketch::standalone();
        for v in 1..=100u64 {
            s.observe(v * 10);
        }
        let before = s.bucket_counts();
        for _ in 0..900 {
            s.observe(50); // a second batch at a much lower latency
        }
        let after = s.bucket_counts();
        let delta: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        let p50 = quantile_from_counts(&delta, 0.50);
        assert!(p50 <= 64, "window delta is dominated by the 50s: {p50}");
        let full_p50 = quantile_from_counts(&after, 0.50);
        assert!(full_p50 <= 64);
        assert_eq!(quantile_from_counts(&[], 0.5), 0);
        assert_eq!(quantile_from_counts(&[0, 0, 0], 0.99), 0);
    }
}
