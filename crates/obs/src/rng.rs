//! Seeded xorshift64* PRNG (re-export).
//!
//! The canonical implementation lives in `mpicd-check` — the bottom of
//! the workspace crate graph — so the model checker's PCT scheduler and
//! every randomized test/benchmark draw from one generator. This module
//! re-exports it under the historical `mpicd_obs::rng` path; existing
//! call sites are unaffected.

pub use mpicd_check::rng::XorShift64Star;
