//! Cross-rank causal tracing: per-rank Lamport clocks and the causal
//! context that travels with every transfer.
//!
//! The flight recorder (see [`crate::flight`]) gives each transfer a
//! timeline *within* one rank; it cannot say whether rank 1's unpack was
//! actually waiting on rank 0's pack. This module supplies the missing
//! happens-before structure: every rank carries a Lamport clock, ticked on
//! each fabric lifecycle event, and the send-side clock value travels with
//! the transfer (the [`CausalContext`] header) so the receive side can
//! merge it on match. Flight events then record the clock (`lc`) and the
//! causal parent (`parent`), turning a multi-rank flight dump into a
//! cross-rank happens-before DAG that `mpicd-inspect critical-path`
//! reconstructs offline.
//!
//! **Clock rules** (standard Lamport):
//!
//! * local event on rank *r*: `clock[r] += 1` ([`tick`]);
//! * message receipt on rank *r* carrying clock `seen`:
//!   `clock[r] = max(clock[r], seen) + 1` ([`observe`]).
//!
//! Both operations are single relaxed atomic RMWs on a per-rank slot; the
//! fabric only calls them for transfers that hold a non-zero flight id, so
//! the disabled-mode cost of the whole layer stays at the flight
//! recorder's one-relaxed-load discipline.
//!
//! In this single-process fabric the "wire" between ranks is a matched
//! in-memory transfer, so the context rides in the pending-send entry; the
//! serialized form ([`CausalContext::encode`], [`CONTEXT_BYTES`] bytes) is
//! what a real wire or the datatype marshal path
//! (`mpicd-datatype::marshal_with_context`) carries.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of per-rank clock slots. Ranks hash into this table modulo
/// [`MAX_RANKS`]; aliasing two ranks onto one slot keeps the clocks
/// *valid* (still monotone, still merged) at a small precision cost, so a
/// fixed table is safe at any world size.
pub const MAX_RANKS: usize = 1024;

/// Serialized size of a [`CausalContext`] in bytes (fid + clock + origin).
pub const CONTEXT_BYTES: usize = 20;

fn table() -> &'static [AtomicU64] {
    static TABLE: OnceLock<Box<[AtomicU64]>> = OnceLock::new();
    TABLE.get_or_init(|| (0..MAX_RANKS).map(|_| AtomicU64::new(0)).collect())
}

fn slot(rank: i32) -> &'static AtomicU64 {
    &table()[rank.rem_euclid(MAX_RANKS as i32) as usize]
}

/// Advance rank `rank`'s Lamport clock for a local event and return the
/// new value (always ≥ 1).
#[inline]
pub fn tick(rank: i32) -> u64 {
    slot(rank).fetch_add(1, Ordering::Relaxed) + 1
}

/// Merge a clock value observed from an incoming message into rank
/// `rank`'s clock (`max(local, seen) + 1`) and return the new value. The
/// result is strictly greater than both the previous local value and
/// `seen`, which is the happens-before guarantee the DAG relies on.
#[inline]
pub fn observe(rank: i32, seen: u64) -> u64 {
    let s = slot(rank);
    // The clock is monotone non-decreasing, so after the fetch_max the
    // slot holds ≥ seen forever; the subsequent increment therefore
    // returns a value > seen even if other ticks interleave.
    s.fetch_max(seen, Ordering::Relaxed);
    s.fetch_add(1, Ordering::Relaxed) + 1
}

/// Read rank `rank`'s clock without advancing it.
#[inline]
pub fn current(rank: i32) -> u64 {
    slot(rank).load(Ordering::Relaxed)
}

/// The causal header that travels with a transfer: the sender's flight id
/// and Lamport clock at post time, plus the origin rank. This is the
/// cross-rank join key — the receive side records `lc` as the `parent` of
/// its `match`/`complete` flight events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CausalContext {
    /// Send-side flight-recorder transfer id (0 = recorder disabled).
    pub fid: u64,
    /// Sender's Lamport clock at post time.
    pub lc: u64,
    /// Origin (sender) rank.
    pub origin: i32,
}

impl CausalContext {
    /// Capture the context for a send posted on `rank` under flight id
    /// `fid`: ticks the rank's clock when the transfer is recorded
    /// (`fid != 0`) and returns an all-zero context otherwise, preserving
    /// the disabled-mode cost discipline.
    pub fn capture(rank: i32, fid: u64) -> Self {
        if fid == 0 {
            return Self::default();
        }
        Self {
            fid,
            lc: tick(rank),
            origin: rank,
        }
    }

    /// Serialize as [`CONTEXT_BYTES`] little-endian bytes
    /// (`fid · lc · origin`).
    pub fn encode(&self) -> [u8; CONTEXT_BYTES] {
        let mut out = [0u8; CONTEXT_BYTES];
        out[0..8].copy_from_slice(&self.fid.to_le_bytes());
        out[8..16].copy_from_slice(&self.lc.to_le_bytes());
        out[16..20].copy_from_slice(&self.origin.to_le_bytes());
        out
    }

    /// Deserialize from the first [`CONTEXT_BYTES`] bytes of `bytes`;
    /// `None` if `bytes` is too short.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < CONTEXT_BYTES {
            return None;
        }
        Some(Self {
            fid: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            lc: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
            origin: i32::from_le_bytes(bytes[16..20].try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Clocks are process-global; tests use high rank numbers unlikely to
    // collide with other tests in this binary and assert only relative
    // properties (monotonicity, merge dominance), never absolute values.

    #[test]
    fn tick_is_monotone() {
        let r = 900;
        let a = tick(r);
        let b = tick(r);
        let c = tick(r);
        assert!(a < b && b < c);
        assert!(current(r) >= c);
    }

    #[test]
    fn observe_dominates_both_inputs() {
        let r = 901;
        let local = tick(r);
        let merged = observe(r, local + 1000);
        assert!(merged > local + 1000, "merge exceeds the observed clock");
        let again = observe(r, 1);
        assert!(again > merged, "stale observations still advance the clock");
    }

    #[test]
    fn ranks_are_independent() {
        let a0 = tick(902);
        let _ = tick(903);
        let a1 = tick(902);
        assert_eq!(a1, a0 + 1, "another rank's tick does not advance ours");
    }

    #[test]
    fn negative_ranks_alias_safely() {
        // Wildcard (-1) ranks map onto a valid slot rather than panicking.
        let v = tick(-1);
        assert!(v >= 1);
        assert!(current(-1) >= v);
    }

    #[test]
    fn context_roundtrip() {
        let ctx = CausalContext {
            fid: 0xdead_beef_1234,
            lc: 42,
            origin: -1,
        };
        let bytes = ctx.encode();
        assert_eq!(CausalContext::decode(&bytes), Some(ctx));
        // Longer buffers decode their prefix; short ones are rejected.
        let mut longer = bytes.to_vec();
        longer.push(0xff);
        assert_eq!(CausalContext::decode(&longer), Some(ctx));
        assert_eq!(CausalContext::decode(&bytes[..CONTEXT_BYTES - 1]), None);
    }

    #[test]
    fn capture_is_zero_when_disabled() {
        let ctx = CausalContext::capture(904, 0);
        assert_eq!(ctx, CausalContext::default());
        assert_eq!(current(904), 0, "no tick without a flight id");
        let live = CausalContext::capture(904, 7);
        assert_eq!(live.fid, 7);
        assert_eq!(live.origin, 904);
        assert!(live.lc >= 1);
    }
}
