//! Observability configuration: environment variables and a builder.
//!
//! Environment (read once, at first use):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `MPICD_TRACE` | enable span tracing (`1`/`true`/`on`) | off |
//! | `MPICD_TRACE_FILE` | Chrome trace output path | `mpicd-trace.json` |
//! | `MPICD_TRACE_CAP` | per-thread ring-buffer capacity (events) | `65536` |
//!
//! Programmatic control overrides the environment:
//! [`ObsConfig::install`] (builder) or [`crate::set_enabled`] (toggle only).

use crate::sync::Mutex;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Default per-thread ring-buffer capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Observability settings.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Whether span tracing is enabled.
    pub enabled: bool,
    /// Chrome trace output path used by [`crate::flush`].
    pub trace_file: Option<PathBuf>,
    /// Per-thread ring-buffer capacity in events (power of two is not
    /// required). Applies to ring buffers created after installation.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            trace_file: None,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Settings from the `MPICD_TRACE*` environment variables.
    pub fn from_env() -> Self {
        let enabled = std::env::var("MPICD_TRACE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                !v.is_empty() && v != "0" && v != "false" && v != "off"
            })
            .unwrap_or(false);
        let trace_file = std::env::var("MPICD_TRACE_FILE").ok().map(PathBuf::from);
        let ring_capacity = std::env::var("MPICD_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|c| *c > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Self {
            enabled,
            trace_file,
            ring_capacity,
        }
    }

    /// Builder: enable/disable tracing.
    pub fn enabled(mut self, on: bool) -> Self {
        self.enabled = on;
        self
    }

    /// Builder: trace output path.
    pub fn trace_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_file = Some(path.into());
        self
    }

    /// Builder: ring-buffer capacity.
    pub fn ring_capacity(mut self, cap: usize) -> Self {
        self.ring_capacity = cap.max(1);
        self
    }

    /// The trace output path ([`Self::trace_file`] or the default).
    pub fn trace_path(&self) -> PathBuf {
        self.trace_file
            .clone()
            .unwrap_or_else(|| PathBuf::from("mpicd-trace.json"))
    }

    /// Install as the process-wide configuration (overrides the
    /// environment) and apply the enable flag.
    pub fn install(self) {
        crate::trace::set_enabled(self.enabled);
        *store().lock() = self;
    }
}

fn store() -> &'static Mutex<ObsConfig> {
    static STORE: OnceLock<Mutex<ObsConfig>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(ObsConfig::from_env()))
}

/// The current process-wide configuration.
pub fn current() -> ObsConfig {
    store().lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.ring_capacity, DEFAULT_RING_CAPACITY);
        assert_eq!(c.trace_path(), PathBuf::from("mpicd-trace.json"));
    }

    #[test]
    fn builder_chains() {
        let c = ObsConfig::default()
            .enabled(true)
            .trace_file("/tmp/t.json")
            .ring_capacity(16);
        assert!(c.enabled);
        assert_eq!(c.trace_path(), PathBuf::from("/tmp/t.json"));
        assert_eq!(c.ring_capacity, 16);
    }
}
