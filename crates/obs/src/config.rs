//! Observability configuration: environment variables and a builder.
//!
//! Environment (read once, at first use):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `MPICD_TRACE` | enable span tracing (`1`/`true`/`on`) | off |
//! | `MPICD_TRACE_FILE` | Chrome trace output path | `mpicd-trace.json` |
//! | `MPICD_TRACE_CAP` | per-thread ring-buffer capacity (events) | `65536` |
//! | `MPICD_FLIGHT` | enable the per-transfer flight recorder, with dump-on-error and a panic-hook dump | off |
//! | `MPICD_FLIGHT_PATH` | flight-recorder JSONL dump path | `mpicd-flight.jsonl` |
//! | `MPICD_FLIGHT_CAP` | flight ring capacity (events, process-global) | `65536` |
//! | `MPICD_FLIGHT_SAMPLE` | record every Nth transfer end-to-end (whole timelines; 1 = all) | `1` |
//! | `MPICD_HEALTH_MS` | when set, write periodic health snapshots every N ms (invalid values use 1000) | off |
//! | `MPICD_HEALTH_PATH` | health-snapshot JSONL path | `mpicd-health.jsonl` |
//! | `MPICD_METRICS_JSON` | write the metrics snapshot as JSON at flush (a path, or `1` for `mpicd-metrics.json`) | off |
//! | `MPICD_TELEMETRY` | enable the continuous telemetry registry (`1`/`true`/`on`) | off |
//! | `MPICD_TELEMETRY_WINDOW_MS` | telemetry time-series window width (ms) | `1000` |
//! | `MPICD_TELEMETRY_PATH` | Prometheus-style exposition path written at flush | `mpicd-telemetry.prom` |
//!
//! Capacity and window knobs are validated at parse time: `0`, absurdly
//! large values, or unparseable input produce a stderr warning and fall
//! back to the default (capacities above [`MAX_CAPACITY`] are clamped)
//! instead of silently misbehaving.
//!
//! Programmatic control overrides the environment:
//! [`ObsConfig::install`] (builder) or [`crate::set_enabled`] /
//! [`crate::flight::set_enabled`] (toggles only).

use crate::sync::Mutex;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Default per-thread ring-buffer capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Default flight-recorder ring capacity (events, whole process).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 65_536;

/// Default telemetry time-series window width (ms).
pub const DEFAULT_TELEMETRY_WINDOW_MS: u64 = 1_000;

/// Upper bound accepted for ring capacities (`MPICD_TRACE_CAP` /
/// `MPICD_FLIGHT_CAP`): 64 Mi events. A flight ring alone costs ~88 bytes
/// per event, so anything larger is a typo, not a tuning choice; larger
/// requests are clamped here with a warning.
pub const MAX_CAPACITY: usize = 1 << 26;

/// Upper bound accepted for `MPICD_TELEMETRY_WINDOW_MS`: one day.
pub const MAX_TELEMETRY_WINDOW_MS: u64 = 86_400_000;

/// Default flight-recorder sampling rate: every transfer is recorded.
pub const DEFAULT_FLIGHT_SAMPLE: u64 = 1;

/// Upper bound accepted for `MPICD_FLIGHT_SAMPLE` (one in a billion —
/// anything sparser is a typo, not a tuning choice).
pub const MAX_FLIGHT_SAMPLE: u64 = 1_000_000_000;

/// Default health-snapshot cadence (ms) when `MPICD_HEALTH_MS` is set but
/// unparseable or 0.
pub const DEFAULT_HEALTH_MS: u64 = 1_000;

/// Upper bound accepted for `MPICD_HEALTH_MS`: one hour.
pub const MAX_HEALTH_MS: u64 = 3_600_000;

/// `1`/`true`/`on`-style boolean environment parse (empty/`0`/`false`/
/// `off` are false).
fn env_flag(value: &str) -> bool {
    let v = value.trim().to_ascii_lowercase();
    !v.is_empty() && v != "0" && v != "false" && v != "off"
}

/// Parse an on/off knob with loud validation: unset (or empty) uses the
/// default silently; `1`/`true`/`on`/`yes` enable and `0`/`false`/`off`/
/// `no` disable (case-insensitive); anything else warns on stderr and
/// falls back to the default instead of silently misbehaving.
pub fn env_toggle(var: &str, default: bool) -> bool {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" => default,
        "1" | "true" | "on" | "yes" => true,
        "0" | "false" | "off" | "no" => false,
        _ => {
            eprintln!(
                "[mpicd-obs] WARNING: {var}={raw:?} is not a boolean \
                 (1/0/true/false/on/off); using {default}"
            );
            default
        }
    }
}

/// Parse an enumerated knob with loud validation: returns the matching
/// entry of `choices` (case-insensitive); unset or empty uses `default`
/// silently, anything unrecognized warns on stderr and falls back.
pub fn env_choice(var: &str, choices: &[&'static str], default: &'static str) -> &'static str {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    let v = raw.trim().to_ascii_lowercase();
    if v.is_empty() {
        return default;
    }
    for c in choices {
        if *c == v {
            return c;
        }
    }
    eprintln!("[mpicd-obs] WARNING: {var}={raw:?} is not one of {choices:?}; using {default:?}");
    default
}

/// Parse a positive integer knob with loud validation: unset uses the
/// default silently; `0`, garbage, or values above `max` warn on stderr
/// and fall back (clamping to `max` for oversized values).
pub fn env_bounded(var: &str, default: u64, max: u64) -> u64 {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    match raw.trim().parse::<u64>() {
        Ok(0) => {
            eprintln!("[mpicd-obs] WARNING: {var}=0 is invalid (must be >= 1); using {default}");
            default
        }
        Ok(v) if v > max => {
            eprintln!("[mpicd-obs] WARNING: {var}={v} exceeds the maximum {max}; clamping");
            max
        }
        Ok(v) => v,
        Err(_) => {
            eprintln!("[mpicd-obs] WARNING: {var}={raw:?} is not a number; using {default}");
            default
        }
    }
}

/// Observability settings.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Whether span tracing is enabled.
    pub enabled: bool,
    /// Chrome trace output path used by [`crate::flush`].
    pub trace_file: Option<PathBuf>,
    /// Per-thread ring-buffer capacity in events (power of two is not
    /// required). Applies to ring buffers created after installation.
    pub ring_capacity: usize,
    /// Whether the per-transfer flight recorder is enabled.
    pub flight: bool,
    /// Flight-recorder JSONL dump path used by [`crate::flush`], the
    /// dump-on-error path and the panic hook.
    pub flight_file: Option<PathBuf>,
    /// Flight ring capacity in events (one ring for the whole process).
    /// Applies only before the first flight event is recorded.
    pub flight_capacity: usize,
    /// Flight-recorder sampling rate: record every Nth transfer
    /// end-to-end (1 = record all). Sampled transfers keep their whole
    /// timeline; unsampled transfers are wholly absent from the ring.
    pub flight_sample: u64,
    /// Health-snapshot cadence in milliseconds; 0 disables the
    /// background health thread (the default).
    pub health_ms: u64,
    /// Health-snapshot JSONL path (`None` uses the default
    /// `mpicd-health.jsonl`).
    pub health_file: Option<PathBuf>,
    /// Metrics-snapshot JSON path written by [`crate::flush`]
    /// (`None` disables the file).
    pub metrics_file: Option<PathBuf>,
    /// Whether the continuous telemetry registry is enabled.
    pub telemetry: bool,
    /// Telemetry time-series window width in milliseconds. Applies to
    /// instruments registered after installation.
    pub telemetry_window_ms: u64,
    /// Prometheus-style exposition path written by [`crate::flush`]
    /// (`None` uses the default `mpicd-telemetry.prom`).
    pub telemetry_file: Option<PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            trace_file: None,
            ring_capacity: DEFAULT_RING_CAPACITY,
            flight: false,
            flight_file: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_sample: DEFAULT_FLIGHT_SAMPLE,
            health_ms: 0,
            health_file: None,
            metrics_file: None,
            telemetry: false,
            telemetry_window_ms: DEFAULT_TELEMETRY_WINDOW_MS,
            telemetry_file: None,
        }
    }
}

impl ObsConfig {
    /// Settings from the `MPICD_TRACE*` / `MPICD_FLIGHT*` /
    /// `MPICD_METRICS_JSON` environment variables.
    pub fn from_env() -> Self {
        let enabled = std::env::var("MPICD_TRACE")
            .map(|v| env_flag(&v))
            .unwrap_or(false);
        let trace_file = std::env::var("MPICD_TRACE_FILE").ok().map(PathBuf::from);
        let ring_capacity = env_bounded(
            "MPICD_TRACE_CAP",
            DEFAULT_RING_CAPACITY as u64,
            MAX_CAPACITY as u64,
        ) as usize;
        let flight = std::env::var("MPICD_FLIGHT")
            .map(|v| env_flag(&v))
            .unwrap_or(false);
        let flight_file = std::env::var("MPICD_FLIGHT_PATH").ok().map(PathBuf::from);
        let flight_capacity = env_bounded(
            "MPICD_FLIGHT_CAP",
            DEFAULT_FLIGHT_CAPACITY as u64,
            MAX_CAPACITY as u64,
        ) as usize;
        let flight_sample = env_bounded(
            "MPICD_FLIGHT_SAMPLE",
            DEFAULT_FLIGHT_SAMPLE,
            MAX_FLIGHT_SAMPLE,
        );
        // MPICD_HEALTH_MS arms the health thread by being set at all;
        // 0/garbage degrade to the documented default cadence rather than
        // silently disabling the snapshots the operator asked for.
        let health_ms = if std::env::var("MPICD_HEALTH_MS").is_ok() {
            env_bounded("MPICD_HEALTH_MS", DEFAULT_HEALTH_MS, MAX_HEALTH_MS)
        } else {
            0
        };
        let health_file = std::env::var("MPICD_HEALTH_PATH").ok().map(PathBuf::from);
        // MPICD_METRICS_JSON is a path, or a bare truthy flag for the
        // default filename.
        let metrics_file = std::env::var("MPICD_METRICS_JSON").ok().and_then(|v| {
            let t = v.trim().to_ascii_lowercase();
            if t.is_empty() || t == "0" || t == "false" || t == "off" {
                None
            } else if t == "1" || t == "true" || t == "on" {
                Some(PathBuf::from("mpicd-metrics.json"))
            } else {
                Some(PathBuf::from(v))
            }
        });
        let telemetry = std::env::var("MPICD_TELEMETRY")
            .map(|v| env_flag(&v))
            .unwrap_or(false);
        let telemetry_window_ms = env_bounded(
            "MPICD_TELEMETRY_WINDOW_MS",
            DEFAULT_TELEMETRY_WINDOW_MS,
            MAX_TELEMETRY_WINDOW_MS,
        );
        let telemetry_file = std::env::var("MPICD_TELEMETRY_PATH")
            .ok()
            .map(PathBuf::from);
        Self {
            enabled,
            trace_file,
            ring_capacity,
            flight,
            flight_file,
            flight_capacity,
            flight_sample,
            health_ms,
            health_file,
            metrics_file,
            telemetry,
            telemetry_window_ms,
            telemetry_file,
        }
    }

    /// Builder: enable/disable tracing.
    pub fn enabled(mut self, on: bool) -> Self {
        self.enabled = on;
        self
    }

    /// Builder: trace output path.
    pub fn trace_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_file = Some(path.into());
        self
    }

    /// Builder: ring-buffer capacity.
    pub fn ring_capacity(mut self, cap: usize) -> Self {
        self.ring_capacity = cap.max(1);
        self
    }

    /// Builder: enable/disable the flight recorder.
    pub fn flight(mut self, on: bool) -> Self {
        self.flight = on;
        self
    }

    /// Builder: flight-recorder dump path.
    pub fn flight_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.flight_file = Some(path.into());
        self
    }

    /// Builder: flight ring capacity.
    pub fn flight_capacity(mut self, cap: usize) -> Self {
        self.flight_capacity = cap.max(1);
        self
    }

    /// Builder: flight-recorder sampling rate (record every `n`th
    /// transfer; 1 = all).
    pub fn flight_sample(mut self, n: u64) -> Self {
        self.flight_sample = n.max(1);
        self
    }

    /// Builder: health-snapshot cadence in milliseconds (0 disables).
    pub fn health_ms(mut self, ms: u64) -> Self {
        self.health_ms = ms;
        self
    }

    /// Builder: health-snapshot JSONL path.
    pub fn health_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.health_file = Some(path.into());
        self
    }

    /// Builder: metrics-snapshot JSON path.
    pub fn metrics_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_file = Some(path.into());
        self
    }

    /// Builder: enable/disable the telemetry registry.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Builder: telemetry window width in milliseconds.
    pub fn telemetry_window_ms(mut self, ms: u64) -> Self {
        self.telemetry_window_ms = ms.max(1);
        self
    }

    /// Builder: telemetry exposition path.
    pub fn telemetry_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.telemetry_file = Some(path.into());
        self
    }

    /// The trace output path ([`Self::trace_file`] or the default).
    pub fn trace_path(&self) -> PathBuf {
        self.trace_file
            .clone()
            .unwrap_or_else(|| PathBuf::from("mpicd-trace.json"))
    }

    /// The flight dump path ([`Self::flight_file`] or the default).
    pub fn flight_path(&self) -> PathBuf {
        self.flight_file
            .clone()
            .unwrap_or_else(|| PathBuf::from("mpicd-flight.jsonl"))
    }

    /// The telemetry exposition path ([`Self::telemetry_file`] or the
    /// default).
    pub fn telemetry_path(&self) -> PathBuf {
        self.telemetry_file
            .clone()
            .unwrap_or_else(|| PathBuf::from("mpicd-telemetry.prom"))
    }

    /// The health-snapshot path ([`Self::health_file`] or the default).
    pub fn health_path(&self) -> PathBuf {
        self.health_file
            .clone()
            .unwrap_or_else(|| PathBuf::from("mpicd-health.jsonl"))
    }

    /// Install as the process-wide configuration (overrides the
    /// environment) and apply the enable flags.
    pub fn install(self) {
        crate::trace::set_enabled(self.enabled);
        crate::flight::set_enabled(self.flight);
        crate::flight::set_sample(self.flight_sample);
        crate::telemetry::set_enabled(self.telemetry);
        let health_ms = self.health_ms;
        *store().lock() = self;
        if health_ms > 0 {
            crate::health::ensure_started();
        }
    }
}

fn store() -> &'static Mutex<ObsConfig> {
    static STORE: OnceLock<Mutex<ObsConfig>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(ObsConfig::from_env()))
}

/// The current process-wide configuration.
pub fn current() -> ObsConfig {
    store().lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert!(!c.flight);
        assert_eq!(c.ring_capacity, DEFAULT_RING_CAPACITY);
        assert_eq!(c.flight_capacity, DEFAULT_FLIGHT_CAPACITY);
        assert_eq!(c.trace_path(), PathBuf::from("mpicd-trace.json"));
        assert_eq!(c.flight_path(), PathBuf::from("mpicd-flight.jsonl"));
        assert!(c.metrics_file.is_none());
        assert!(!c.telemetry);
        assert_eq!(c.telemetry_window_ms, DEFAULT_TELEMETRY_WINDOW_MS);
        assert_eq!(c.telemetry_path(), PathBuf::from("mpicd-telemetry.prom"));
        assert_eq!(c.flight_sample, DEFAULT_FLIGHT_SAMPLE);
        assert_eq!(c.health_ms, 0, "health thread is off by default");
        assert_eq!(c.health_path(), PathBuf::from("mpicd-health.jsonl"));
    }

    #[test]
    fn builder_chains() {
        let c = ObsConfig::default()
            .enabled(true)
            .trace_file("/tmp/t.json")
            .ring_capacity(16)
            .flight(true)
            .flight_file("/tmp/f.jsonl")
            .flight_capacity(32)
            .metrics_file("/tmp/m.json")
            .telemetry(true)
            .telemetry_window_ms(250)
            .telemetry_file("/tmp/tele.prom")
            .flight_sample(16)
            .health_ms(500)
            .health_file("/tmp/h.jsonl");
        assert!(c.enabled);
        assert!(c.flight);
        assert_eq!(c.trace_path(), PathBuf::from("/tmp/t.json"));
        assert_eq!(c.flight_path(), PathBuf::from("/tmp/f.jsonl"));
        assert_eq!(c.ring_capacity, 16);
        assert_eq!(c.flight_capacity, 32);
        assert_eq!(c.metrics_file, Some(PathBuf::from("/tmp/m.json")));
        assert!(c.telemetry);
        assert_eq!(c.telemetry_window_ms, 250);
        assert_eq!(c.telemetry_path(), PathBuf::from("/tmp/tele.prom"));
        assert_eq!(c.flight_sample, 16);
        assert_eq!(c.health_ms, 500);
        assert_eq!(c.health_path(), PathBuf::from("/tmp/h.jsonl"));
    }

    #[test]
    fn env_flag_parses() {
        for on in ["1", "true", "ON", " yes "] {
            assert!(env_flag(on), "{on:?}");
        }
        for off in ["", "0", "false", "OFF"] {
            assert!(!env_flag(off), "{off:?}");
        }
    }

    #[test]
    fn env_bounded_validates() {
        // Env mutation is process-wide; this test owns a variable name no
        // other code reads and restores it before returning.
        const VAR: &str = "MPICDTEST_CAP_KNOB";
        let check = |val: Option<&str>, expect: u64| {
            match val {
                Some(v) => std::env::set_var(VAR, v),
                None => std::env::remove_var(VAR),
            }
            assert_eq!(env_bounded(VAR, 64, 1024), expect, "value {val:?}");
        };
        check(None, 64);
        check(Some("128"), 128);
        check(Some("0"), 64);
        check(Some("not-a-number"), 64);
        check(Some("999999999"), 1024);
        check(Some("1024"), 1024);
        std::env::remove_var(VAR);
    }

    #[test]
    fn env_toggle_validates() {
        // Env mutation is process-wide; this test owns its variable name.
        const VAR: &str = "MPICDTEST_TOGGLE_KNOB";
        let check = |val: Option<&str>, default: bool, expect: bool| {
            match val {
                Some(v) => std::env::set_var(VAR, v),
                None => std::env::remove_var(VAR),
            }
            assert_eq!(env_toggle(VAR, default), expect, "value {val:?}");
        };
        check(None, true, true);
        check(None, false, false);
        check(Some("1"), false, true);
        check(Some("ON"), false, true);
        check(Some("0"), true, false);
        check(Some("off"), true, false);
        check(Some(""), false, false);
        check(Some(""), true, true);
        check(Some("banana"), true, true);
        check(Some("banana"), false, false);
        std::env::remove_var(VAR);
    }

    #[test]
    fn env_choice_validates() {
        const VAR: &str = "MPICDTEST_CHOICE_KNOB";
        const CHOICES: &[&str] = &["auto", "legacy", "wide"];
        let check = |val: Option<&str>, expect: &str| {
            match val {
                Some(v) => std::env::set_var(VAR, v),
                None => std::env::remove_var(VAR),
            }
            assert_eq!(env_choice(VAR, CHOICES, "auto"), expect, "value {val:?}");
        };
        check(None, "auto");
        check(Some("legacy"), "legacy");
        check(Some(" WIDE "), "wide");
        check(Some(""), "auto");
        check(Some("nope"), "auto");
        std::env::remove_var(VAR);
    }
}
