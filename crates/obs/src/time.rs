//! Monotonic process clock.
//!
//! All trace timestamps are nanoseconds since the first call to
//! [`now_ns`] in this process, so spans recorded on different threads
//! share one timeline (what Chrome's trace viewer expects).

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (monotonic).
#[inline]
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn advances() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(now_ns() - a >= 1_000_000, "at least 1ms elapsed");
    }
}
