//! Span/event tracer with per-thread ring buffers.
//!
//! A span is opened with [`crate::span!`] (or [`span`]/[`span_acc`]) and
//! recorded when its RAII guard drops. Events land in a per-thread ring
//! buffer (capacity from [`crate::ObsConfig::ring_capacity`]); when a ring
//! fills, the oldest events are overwritten and counted as dropped, so a
//! long benchmark can always keep its *most recent* window.
//!
//! **Cost model.** When tracing is disabled (the default), opening a span
//! performs one relaxed atomic load and the guard's drop does nothing —
//! no clock read, no allocation, no locking. When enabled, a span costs
//! two monotonic clock reads plus one push into an uncontended per-thread
//! mutex (only the exporter ever takes it from another thread).

use crate::metrics::Counter;
use crate::sync::Mutex;
use crate::time::now_ns;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if crate::config::current().enabled {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether span tracing is currently enabled.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable span tracing at runtime (overrides `MPICD_TRACE`).
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name (e.g. `"pack"`).
    pub name: &'static str,
    /// Category (e.g. `"fabric"`); becomes the Chrome trace `cat`.
    pub cat: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Payload bytes attached to the span (0 if not applicable).
    pub bytes: u64,
    /// Recording thread (sequential id, stable per thread).
    pub tid: u64,
}

struct Ring {
    events: Vec<Event>,
    cap: usize,
    /// Next overwrite position once the ring is full.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Drain in chronological order.
    fn drain(&mut self) -> Vec<Event> {
        let mut out = std::mem::take(&mut self.events);
        out.rotate_left(self.next);
        self.next = 0;
        out
    }
}

struct ThreadBuf {
    tid: u64,
    ring: Mutex<Ring>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

fn with_local(f: impl FnOnce(&ThreadBuf)) {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            static NEXT_TID: AtomicU64 = AtomicU64::new(0);
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring {
                    events: Vec::new(),
                    cap: crate::config::current().ring_capacity.max(1),
                    next: 0,
                    dropped: 0,
                }),
            });
            registry().lock().push(Arc::clone(&buf));
            buf
        });
        f(buf);
    });
}

/// Record a completed span directly (used by the guard; public so layers
/// with externally-measured durations — e.g. modeled wire time — can emit
/// synthetic spans onto the same timeline).
pub fn record(name: &'static str, cat: &'static str, start_ns: u64, dur_ns: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    with_local(|buf| {
        buf.ring.lock().push(Event {
            name,
            cat,
            start_ns,
            dur_ns,
            bytes,
            tid: buf.tid,
        });
    });
}

/// Drain every thread's ring buffer, returning all events sorted by start
/// time. Events recorded after this call accumulate afresh.
pub fn take_events() -> Vec<Event> {
    let bufs = registry().lock();
    let mut out = Vec::new();
    for buf in bufs.iter() {
        out.extend(buf.ring.lock().drain());
    }
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Total events overwritten (lost) across all ring buffers so far.
pub fn dropped_events() -> u64 {
    registry()
        .lock()
        .iter()
        .map(|b| b.ring.lock().dropped)
        .sum()
}

struct ActiveSpan<'a> {
    name: &'static str,
    cat: &'static str,
    bytes: u64,
    start_ns: u64,
    acc: Option<&'a Counter>,
}

/// RAII guard recording a span on drop. Created by [`crate::span!`],
/// [`span`] or [`span_acc`]; inert when tracing is disabled.
pub struct SpanGuard<'a> {
    inner: Option<ActiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let dur = now_ns().saturating_sub(active.start_ns);
            if let Some(c) = active.acc {
                c.add(dur);
            }
            record(active.name, active.cat, active.start_ns, dur, active.bytes);
        }
    }
}

/// Open a span. Prefer the [`crate::span!`] macro at call sites.
#[inline]
pub fn span(name: &'static str, cat: &'static str, bytes: u64) -> SpanGuard<'static> {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(ActiveSpan {
            name,
            cat,
            bytes,
            start_ns: now_ns(),
            acc: None,
        }),
    }
}

/// Open a span that also adds its duration (ns) to `acc` on drop — the
/// bridge between tracing and the metrics registry used for per-phase
/// breakdowns (pack-ns / wire-ns) without draining the trace.
#[inline]
pub fn span_acc<'a>(
    name: &'static str,
    cat: &'static str,
    bytes: u64,
    acc: &'a Counter,
) -> SpanGuard<'a> {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(ActiveSpan {
            name,
            cat,
            bytes,
            start_ns: now_ns(),
            acc: Some(acc),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; unit tests here only exercise the
    // pieces that are safe under parallel test threads (ring mechanics and
    // the disabled fast path). Enabled end-to-end behaviour is covered by
    // the crate's integration tests, which each run in their own process.

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = Ring {
            events: Vec::new(),
            cap: 3,
            next: 0,
            dropped: 0,
        };
        for i in 0..5u64 {
            ring.push(Event {
                name: "x",
                cat: "t",
                start_ns: i,
                dur_ns: 0,
                bytes: 0,
                tid: 0,
            });
        }
        assert_eq!(ring.dropped, 2);
        let drained = ring.drain();
        let starts: Vec<u64> = drained.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4], "oldest two were overwritten");
    }

    #[test]
    fn ring_drain_resets() {
        let mut ring = Ring {
            events: Vec::new(),
            cap: 4,
            next: 0,
            dropped: 0,
        };
        ring.push(Event {
            name: "a",
            cat: "t",
            start_ns: 1,
            dur_ns: 2,
            bytes: 3,
            tid: 0,
        });
        assert_eq!(ring.drain().len(), 1);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn disabled_span_is_inert() {
        // Regardless of what other tests do with the global flag, a guard
        // constructed while disabled records nothing and touches no clock.
        let g = SpanGuard { inner: None };
        drop(g);
    }
}
