#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # mpicd-obs — tracing & metrics for the mpicd stack
//!
//! The paper's argument is a *breakdown* claim: custom serialization wins
//! because it trades per-buffer messages and bounce-buffer copies for packed
//! fragments plus zero-copy regions. Verifying that claim requires
//! attributing time to pack vs. wire vs. copy — which is exactly what this
//! crate provides, as an always-available, near-zero-overhead substrate:
//!
//! * [`trace`] — lightweight span/event tracing. [`span!`]-style RAII
//!   guards record monotonic start/stop into per-thread ring buffers.
//!   Unless tracing is enabled (`MPICD_TRACE=1` or
//!   [`config::ObsConfig::install`]), a span is a single relaxed atomic
//!   load — no clock read, no allocation.
//! * [`flight`] — the per-transfer flight recorder: a lock-free bounded
//!   ring of structured lifecycle events (post/match/fragments/modeled
//!   wire/complete/error), each tagged with a process-unique transfer id.
//!   Off by default at the same one-relaxed-load cost discipline; enabled
//!   with `MPICD_FLIGHT=1`, which also arms dump-on-error and a
//!   panic-hook dump. Dumps are JSON lines readable by the
//!   `mpicd-inspect` analyzer (in `crates/bench`).
//! * [`causal`] — per-rank Lamport clocks and the causal context header
//!   that travels with each transfer, turning multi-rank flight dumps
//!   into a cross-rank happens-before DAG (`mpicd-inspect critical-path`).
//! * [`telemetry`] — continuous telemetry: windowed time-series counters,
//!   streaming p50/p99 quantile sketches and level gauges (with
//!   high-water marks) with Prometheus-style text exposition
//!   (`MPICD_TELEMETRY=1`), at the same disabled-mode one-relaxed-load
//!   cost discipline as the flight recorder.
//! * [`health`] — a background thread (`MPICD_HEALTH_MS=N`) that writes
//!   periodic health-snapshot JSONL (every registered gauge/series/
//!   sketch) and refreshes the Prometheus exposition while the process
//!   runs, instead of waiting for the exit-time [`flush`]. All
//!   observability files are replaced atomically (tmp + rename), so
//!   concurrent scrapers never see torn output.
//! * [`metrics`] — a process-global registry of named [`Counter`]s and
//!   log2-bucketed [`Histogram`]s with p50/p99/max summaries. Counters are
//!   plain relaxed atomics and stay on even when tracing is off (they are
//!   the same cost class as the fabric's existing `FabricStats`).
//! * [`export`] — a human-readable summary table and Chrome trace-event
//!   JSON (loadable in `chrome://tracing` / Perfetto).
//! * [`rng`] — a tiny seeded xorshift64* PRNG, shared by tests and
//!   benchmarks now that the workspace carries no external dependencies.
//! * [`sync`] — poison-ignoring wrappers over `std::sync` primitives,
//!   the workspace's replacement for `parking_lot`.
//!
//! ## Usage
//!
//! ```
//! use mpicd_obs as obs;
//!
//! // Programmatic enable (benchmarks honour MPICD_TRACE instead).
//! obs::set_enabled(true);
//!
//! {
//!     let _span = obs::span!("pack", "demo", 4096);
//!     // ... work ...
//! } // span recorded on drop
//!
//! let packed = obs::metrics::global().counter("demo.packed_bytes");
//! packed.add(4096);
//!
//! let summary = obs::export::summary();
//! assert!(summary.contains("demo.packed_bytes"));
//! obs::set_enabled(false);
//! ```

pub mod causal;
pub mod config;
pub mod export;
pub mod flight;
mod fsio;
pub mod health;
pub mod metrics;
pub mod rng;
pub mod sync;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use config::ObsConfig;
pub use metrics::{global, Counter, Histogram, Registry, Snapshot};
pub use rng::XorShift64Star;
pub use time::now_ns;
pub use trace::{enabled, set_enabled, SpanGuard};

/// Record a span over the enclosing scope.
///
/// Forms:
/// * `span!("name")` — category defaults to `"mpicd"`, zero bytes.
/// * `span!("name", category)` — explicit category, zero bytes.
/// * `span!("name", category, bytes)` — byte count attached to the event.
///
/// Returns a [`SpanGuard`]; bind it (`let _span = ...`) so it drops at end
/// of scope. When tracing is disabled this is one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name, "mpicd", 0)
    };
    ($name:expr, $cat:expr) => {
        $crate::trace::span($name, $cat, 0)
    };
    ($name:expr, $cat:expr, $bytes:expr) => {
        $crate::trace::span($name, $cat, $bytes as u64)
    };
}

/// Flush observability output:
///
/// * when a metrics JSON path is configured (`MPICD_METRICS_JSON`), write
///   the metrics snapshot there — counters are always on, so this works
///   even with tracing disabled;
/// * when the flight recorder is enabled (`MPICD_FLIGHT=1` or
///   [`flight::set_enabled`]), dump the flight ring as JSON lines (path
///   from [`ObsConfig`], default `mpicd-flight.jsonl`);
/// * when telemetry is enabled (`MPICD_TELEMETRY=1` or
///   [`telemetry::set_enabled`]), write the Prometheus-style exposition
///   (default `mpicd-telemetry.prom`);
/// * when span tracing is enabled, write the Chrome trace-event file
///   (default `mpicd-trace.json`) and print the metrics summary table to
///   stderr.
///
/// Ring-buffer truncation (trace drops, flight overflow) is warned about
/// on stderr so a truncated recording is never silently read as complete.
/// Returns the trace file path if one was written.
pub fn flush() -> Option<std::path::PathBuf> {
    let cfg = config::current();
    if health::running() {
        // Capture the end-of-run state in the snapshot stream too.
        health::tick();
    }
    if let Some(mpath) = &cfg.metrics_file {
        match export::write_metrics_json(mpath) {
            Ok(()) => eprintln!("[mpicd-obs] wrote metrics snapshot to {}", mpath.display()),
            Err(e) => eprintln!("[mpicd-obs] failed to write {}: {e}", mpath.display()),
        }
    }
    if telemetry::enabled() {
        let tpath = cfg.telemetry_path();
        match telemetry::write_prometheus(&tpath) {
            Ok(()) => eprintln!(
                "[mpicd-obs] wrote telemetry exposition to {}",
                tpath.display()
            ),
            Err(e) => eprintln!("[mpicd-obs] failed to write {}: {e}", tpath.display()),
        }
    }
    if flight::enabled() {
        let fpath = cfg.flight_path();
        match flight::dump_jsonl(&fpath) {
            Ok(n) => eprintln!("[mpicd-obs] wrote {n} flight events to {}", fpath.display()),
            Err(e) => eprintln!("[mpicd-obs] failed to write {}: {e}", fpath.display()),
        }
        let lost = flight::overflowed();
        if lost > 0 {
            eprintln!(
                "[mpicd-obs] WARNING: flight ring overwrote {lost} events; \
                 dumped timelines may be incomplete (raise MPICD_FLIGHT_CAP)"
            );
        }
    }
    if !enabled() {
        return None;
    }
    let path = cfg.trace_path();
    let written = match export::write_chrome_trace(&path) {
        Ok(n) => {
            eprintln!("[mpicd-obs] wrote {n} trace events to {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("[mpicd-obs] failed to write {}: {e}", path.display());
            false
        }
    };
    let dropped = trace::dropped_events();
    if dropped > 0 {
        eprintln!(
            "[mpicd-obs] WARNING: trace ring buffers overwrote {dropped} events; \
             the trace window is incomplete (raise MPICD_TRACE_CAP)"
        );
    }
    eprintln!("{}", export::summary());
    written.then_some(path)
}
