//! Atomic file replacement for observability artifacts.
//!
//! Every file the crate flushes (metrics JSON, telemetry exposition,
//! flight dumps, Chrome traces, health snapshots) may be read by an
//! external scraper *while the process is still running* — the health
//! thread rewrites them continuously. A plain `File::create` + write
//! exposes a torn half-file to any concurrent reader; writing the whole
//! payload to a `<path>.tmp` sibling and renaming it into place makes
//! each flush all-or-nothing (rename is atomic within a filesystem).

use std::io;
use std::path::{Path, PathBuf};

/// The `<path>.tmp` sibling used as the staging file.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Replace `path` with `contents` atomically: write a `<path>.tmp`
/// sibling, then rename it over `path`. A concurrent reader sees either
/// the previous complete file or the new complete file, never a torn mix.
pub(crate) fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmp_sibling_appends_suffix() {
        assert_eq!(
            tmp_sibling(Path::new("/tmp/a/mpicd-flight.jsonl")),
            PathBuf::from("/tmp/a/mpicd-flight.jsonl.tmp")
        );
    }

    #[test]
    fn write_atomic_replaces_and_removes_staging() {
        let dir = std::env::temp_dir().join("mpicd-obs-fsio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(
            !tmp_sibling(&path).exists(),
            "staging file is renamed away, not left behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
