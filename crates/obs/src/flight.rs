//! Per-transfer flight recorder: a lock-free bounded ring of structured
//! lifecycle events.
//!
//! The span tracer answers "where did this *process* spend time"; the
//! flight recorder answers "what happened to this *transfer*". Every
//! send/recv posted through the fabric gets a process-unique transfer id,
//! and the fabric emits one [`FlightEvent`] per lifecycle step —
//! post, match, each packed/unpacked fragment, the modeled wire time, and
//! completion or error — into a single process-global ring. A crashed or
//! slow run leaves a black box behind: the ring can be dumped as JSON
//! lines ([`dump_jsonl`]) and replayed by the `mpicd-inspect` analyzer to
//! reconstruct each transfer's timeline and attribute its latency to
//! wait-for-match / pack / wire / unpack.
//!
//! **Cost model.** Disabled (the default), every entry point is one
//! relaxed atomic load — the same discipline as [`crate::span!`]; no
//! clock read, no allocation, no id allocation ([`next_id`] returns 0 and
//! every recording call short-circuits on id 0). Enabled, recording an
//! event is a clock read plus a handful of atomic stores into a
//! pre-allocated slot — no locks, no allocation, wait-free for writers.
//!
//! **Ring protocol.** Each slot holds a sequence word and the event
//! payload as plain atomics. A writer claims a global ticket
//! (`fetch_add`), then claims the slot via a single `compare_exchange` of
//! the sequence word to the odd value `2·ticket+1`; if another writer is
//! mid-write in that slot (it would take a full lap of the ring to
//! collide), the event is *dropped* and counted instead of torn. The
//! payload words are stored relaxed behind a release fence and the
//! sequence is published as the even value `2·ticket+2`. Readers validate
//! the sequence on both sides of the payload read (tickets are unique, so
//! ABA is impossible) and discard in-flight slots. The whole ring is
//! safe-code atomics — no `unsafe`, no locks, torn events are impossible.
//!
//! Enabling via the `MPICD_FLIGHT` environment variable (as opposed to
//! [`set_enabled`]) additionally arms *black-box* behaviour: recording an
//! [`EventKind::Error`] event dumps the ring to the configured path, and a
//! panic-hook dump is installed so aborts leave a readable trace.

use crate::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use crate::time::now_ns;
use std::path::{Path, PathBuf};
use std::sync::{Once, OnceLock};

/// Payload words per ring slot (one encoded [`FlightEvent`]).
const WORDS: usize = 10;

// ---- enable flag ------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
/// Dump-on-error / panic-hook behaviour; armed only by `MPICD_FLIGHT`
/// (environment) so programmatic test toggles never write files.
static AUTODUMP: AtomicBool = AtomicBool::new(false);
/// Sampling rate: [`next_id`] hands out a real id to every `SAMPLE`th
/// transfer and 0 to the rest (1 = record everything).
static SAMPLE: AtomicU64 = AtomicU64::new(1);
/// Transfers seen since the recorder was enabled; drives the every-Nth
/// sampling decision.
static SAMPLE_TICK: AtomicU64 = AtomicU64::new(0);

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let cfg = crate::config::current();
        SAMPLE.store(cfg.flight_sample.max(1), Ordering::Relaxed);
        if cfg.flight {
            ENABLED.store(true, Ordering::Relaxed);
            AUTODUMP.store(true, Ordering::Relaxed);
            install_panic_hook();
        }
    });
}

/// Whether the flight recorder is currently enabled.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable the flight recorder at runtime (overrides
/// `MPICD_FLIGHT`). Unlike the environment knob this does *not* arm the
/// dump-on-error and panic-hook behaviour.
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// Set the sampling rate at runtime (overrides `MPICD_FLIGHT_SAMPLE`):
/// record every `n`th transfer end-to-end, 1 records everything. Sampling
/// happens at id-allocation time, so a sampled transfer keeps its *whole*
/// timeline and an unsampled one is wholly absent — never partial.
pub fn set_sample(n: u64) {
    ENV_INIT.call_once(|| {});
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// The current sampling rate (`n` as in "record every `n`th transfer").
pub fn sample() -> u64 {
    init_from_env();
    SAMPLE.load(Ordering::Relaxed)
}

fn install_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some((path, n)) = dump_to_configured() {
            eprintln!(
                "[mpicd-obs] panic: dumped {n} flight events to {}",
                path.display()
            );
        }
        prev(info);
    }));
}

// ---- event model ------------------------------------------------------------

/// The lifecycle step a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A send was posted (`id` is the canonical transfer id from here on).
    PostSend = 0,
    /// A receive was posted (`id` is the receive-post id; the transfer's
    /// [`EventKind::Match`] event carries it in `aux` to join the two).
    PostRecv = 1,
    /// Send and receive matched; `aux` holds the receive-post id.
    Match = 2,
    /// One pack-callback fragment; `dur_ns` is callback time, `aux` the
    /// segment-local offset.
    FragPacked = 3,
    /// One unpack-callback fragment (same fields as [`Self::FragPacked`]).
    FragUnpacked = 4,
    /// The modeled wire time for the message: `t_ns` anchors at the match,
    /// `dur_ns` is the modeled duration (simulated, not CPU time).
    WireModeled = 5,
    /// The transfer finished; end of its timeline.
    Complete = 6,
    /// The transfer failed; `aux` carries a stable error code.
    Error = 7,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::PostSend,
            1 => Self::PostRecv,
            2 => Self::Match,
            3 => Self::FragPacked,
            4 => Self::FragUnpacked,
            5 => Self::WireModeled,
            6 => Self::Complete,
            7 => Self::Error,
            _ => return None,
        })
    }

    /// Stable snake_case name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::PostSend => "post_send",
            Self::PostRecv => "post_recv",
            Self::Match => "match",
            Self::FragPacked => "frag_packed",
            Self::FragUnpacked => "frag_unpacked",
            Self::WireModeled => "wire_modeled",
            Self::Complete => "complete",
            Self::Error => "error",
        }
    }
}

/// The protocol a transfer used, as decided at post/match time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Method {
    /// Not applicable / not yet decided (e.g. receive posts).
    Unknown = 0,
    /// Eager protocol: bounce-buffer copy at post time.
    Eager = 1,
    /// Rendezvous protocol: deferred until matched, handshake surcharge.
    Rendezvous = 2,
    /// Pipelined scatter/gather (the custom-datatype iov path).
    Pipelined = 3,
}

impl Method {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::Unknown,
            1 => Self::Eager,
            2 => Self::Rendezvous,
            3 => Self::Pipelined,
            _ => return None,
        })
    }

    /// Stable name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Unknown => "unknown",
            Self::Eager => "eager",
            Self::Rendezvous => "rendezvous",
            Self::Pipelined => "pipelined",
        }
    }
}

/// One structured lifecycle event. Fixed-size, encodable into 10 atomic
/// words (the ring's slot payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Lifecycle step.
    pub kind: EventKind,
    /// Process-unique transfer id (from [`next_id`]); never 0 in the ring.
    pub id: u64,
    /// Event timestamp, ns since the process trace epoch ([`now_ns`]).
    pub t_ns: u64,
    /// Duration in ns where meaningful (fragments, modeled wire), else 0.
    pub dur_ns: u64,
    /// Source rank (-1 for wildcard receive posts).
    pub src: i32,
    /// Destination rank.
    pub dst: i32,
    /// Message tag (may be the wildcard on receive posts).
    pub tag: i32,
    /// Payload bytes this event covers.
    pub bytes: u64,
    /// Transfer protocol.
    pub method: Method,
    /// Kind-specific extra: receive-post id on `Match`, segment offset on
    /// fragments, error code on `Error`.
    pub aux: u64,
    /// Lamport clock of the rank that executed this event (see
    /// [`crate::causal`]); 0 when causal tracing did not stamp the event.
    pub lc: u64,
    /// Lamport clock of this event's causal parent — for receive-side
    /// events (`match`/`wire_modeled`/`complete`) the send-side clock that
    /// travelled in the transfer's causal header; 0 for root events.
    pub parent: u64,
}

impl FlightEvent {
    /// A zeroed event of `kind` for transfer `id`; chain the builder
    /// setters, then [`record`] it. `t_ns == 0` means "stamp at record".
    pub fn new(kind: EventKind, id: u64) -> Self {
        Self {
            kind,
            id,
            t_ns: 0,
            dur_ns: 0,
            src: -1,
            dst: -1,
            tag: 0,
            bytes: 0,
            method: Method::Unknown,
            aux: 0,
            lc: 0,
            parent: 0,
        }
    }

    /// Builder: explicit timestamp (ns since the trace epoch).
    pub fn at(mut self, t_ns: u64) -> Self {
        self.t_ns = t_ns;
        self
    }

    /// Builder: duration.
    pub fn dur(mut self, dur_ns: u64) -> Self {
        self.dur_ns = dur_ns;
        self
    }

    /// Builder: source and destination ranks.
    pub fn ranks(mut self, src: i32, dst: i32) -> Self {
        self.src = src;
        self.dst = dst;
        self
    }

    /// Builder: message tag.
    pub fn tag(mut self, tag: i32) -> Self {
        self.tag = tag;
        self
    }

    /// Builder: payload bytes.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Builder: transfer protocol.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Builder: kind-specific extra word.
    pub fn aux(mut self, aux: u64) -> Self {
        self.aux = aux;
        self
    }

    /// Builder: Lamport clock of the executing rank.
    pub fn lc(mut self, lc: u64) -> Self {
        self.lc = lc;
        self
    }

    /// Builder: Lamport clock of the causal parent event.
    pub fn parent(mut self, parent: u64) -> Self {
        self.parent = parent;
        self
    }

    fn encode(&self) -> [u64; WORDS] {
        [
            self.id,
            self.t_ns,
            self.dur_ns,
            self.bytes,
            self.aux,
            (self.kind as u64) | ((self.method as u64) << 8),
            (self.src as u32 as u64) | ((self.dst as u32 as u64) << 32),
            self.tag as i64 as u64,
            self.lc,
            self.parent,
        ]
    }

    fn decode(w: &[u64; WORDS]) -> Option<Self> {
        Some(Self {
            id: w[0],
            t_ns: w[1],
            dur_ns: w[2],
            bytes: w[3],
            aux: w[4],
            kind: EventKind::from_u8((w[5] & 0xff) as u8)?,
            method: Method::from_u8(((w[5] >> 8) & 0xff) as u8)?,
            src: w[6] as u32 as i32,
            dst: (w[6] >> 32) as u32 as i32,
            tag: (w[7] as i64) as i32,
            lc: w[8],
            parent: w[9],
        })
    }

    /// Render as one JSON object (no trailing newline). All fields are
    /// numeric or fixed enum names, so no string escaping is needed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"id\":{},\"t_ns\":{},\"dur_ns\":{},\"src\":{},\"dst\":{},\"tag\":{},\"bytes\":{},\"method\":\"{}\",\"aux\":{},\"lc\":{},\"parent\":{}}}",
            self.kind.as_str(),
            self.id,
            self.t_ns,
            self.dur_ns,
            self.src,
            self.dst,
            self.tag,
            self.bytes,
            self.method.as_str(),
            self.aux,
            self.lc,
            self.parent,
        )
    }
}

// ---- the ring ---------------------------------------------------------------

struct Slot {
    /// `2·ticket+1` while a writer owns the slot, `2·ticket+2` once the
    /// payload for `ticket` is published, 0 when never written.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

struct Ring {
    slots: Box<[Slot]>,
    /// Next ticket; ticket `n` lives in slot `n % capacity`.
    head: AtomicU64,
    /// Events dropped because the claiming CAS lost (a writer was lapped
    /// mid-write — requires a full ring lap during one record).
    contended: AtomicU64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        Self {
            slots,
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    fn push(&self, words: [u64; WORDS]) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let cur = slot.seq.load(Ordering::Relaxed);
        let claimed = cur & 1 == 0
            && slot
                .seq
                .compare_exchange(
                    cur,
                    n.wrapping_mul(2).wrapping_add(1),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok();
        if !claimed {
            // Another writer owns the slot (we were lapped); drop rather
            // than tear.
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq
            .store(n.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    /// Read the payload published for ticket `n`, if still intact.
    fn read(&self, n: u64) -> Option<[u64; WORDS]> {
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let expect = n.wrapping_mul(2).wrapping_add(2);
        if slot.seq.load(Ordering::Acquire) != expect {
            return None;
        }
        let words = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
        fence(Ordering::Acquire);
        // Tickets are unique, so seeing `expect` again proves no writer
        // touched the payload in between.
        if slot.seq.load(Ordering::Relaxed) != expect {
            return None;
        }
        Some(words)
    }

    /// Decode every intact event with ticket >= `mark`, oldest first.
    fn snapshot_since(&self, mark: u64) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Acquire);
        let lo = head
            .saturating_sub(self.slots.len() as u64)
            .max(mark)
            .min(head);
        (lo..head)
            .filter_map(|n| self.read(n))
            .filter_map(|w| FlightEvent::decode(&w))
            .collect()
    }

    /// Events overwritten by the bounded ring plus contention drops.
    fn lost(&self) -> u64 {
        let overwritten = self
            .head
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len() as u64);
        overwritten + self.contended.load(Ordering::Relaxed)
    }
}

static RING: OnceLock<Ring> = OnceLock::new();

fn ring() -> &'static Ring {
    RING.get_or_init(|| Ring::new(crate::config::current().flight_capacity))
}

// ---- recording API ----------------------------------------------------------

/// Allocate a process-unique transfer id, or 0 when the recorder is
/// disabled (id 0 short-circuits every later recording call, keeping the
/// disabled hot path at one relaxed atomic load per call site).
///
/// With sampling enabled (`MPICD_FLIGHT_SAMPLE=N` / [`set_sample`]),
/// every `N`th transfer gets a real id and the rest get 0 — so sampled
/// transfers record complete timelines while unsampled ones stay wholly
/// absent, and the recorder can stay on under soak-level traffic. The
/// disabled path is untouched: still the single relaxed load.
pub fn next_id() -> u64 {
    if !enabled() {
        return 0;
    }
    let n = SAMPLE.load(Ordering::Relaxed);
    if n > 1
        && !SAMPLE_TICK
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(n)
    {
        return 0;
    }
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Timestamp helper for externally-timed events (fragments): returns
/// [`now_ns`] when an event for `id` would be recorded, else 0 without
/// touching the clock.
#[inline]
pub fn clock(id: u64) -> u64 {
    if id != 0 && enabled() {
        now_ns()
    } else {
        0
    }
}

/// Record an event. No-op when the recorder is disabled or `ev.id == 0`.
/// A zero `t_ns` is stamped with [`now_ns`] at record time. Recording an
/// [`EventKind::Error`] event while the recorder was armed by
/// `MPICD_FLIGHT` dumps the ring (the black-box behaviour).
pub fn record(mut ev: FlightEvent) {
    if ev.id == 0 || !enabled() {
        return;
    }
    if ev.t_ns == 0 {
        ev.t_ns = now_ns();
    }
    ring().push(ev.encode());
    if ev.kind == EventKind::Error && AUTODUMP.load(Ordering::Relaxed) {
        if let Some((path, n)) = dump_to_configured() {
            eprintln!(
                "[mpicd-obs] transfer {} failed (code {}): dumped {n} flight events to {}",
                ev.id,
                ev.aux,
                path.display()
            );
        }
    }
}

/// Record one pack/unpack fragment with an externally-measured start
/// (`start_ns` from [`clock`]) and the transfer's Lamport clock (`lc`,
/// 0 when causal tracing is not stamping). No-op when disabled or
/// `id == 0`.
#[inline]
pub fn record_frag(kind: EventKind, id: u64, start_ns: u64, bytes: u64, offset: u64, lc: u64) {
    if id == 0 || !enabled() {
        return;
    }
    let now = now_ns();
    let dur = if start_ns == 0 {
        0
    } else {
        now.saturating_sub(start_ns)
    };
    record(
        FlightEvent::new(kind, id)
            .at(if start_ns == 0 { now } else { start_ns })
            .dur(dur)
            .bytes(bytes)
            .aux(offset)
            .lc(lc),
    );
}

// ---- reading & dumping ------------------------------------------------------

/// Current ring position; pass to [`events_since`] to scope a window.
pub fn mark() -> u64 {
    match RING.get() {
        Some(r) => r.head.load(Ordering::Acquire),
        None => 0,
    }
}

/// Decode every intact event currently in the ring, oldest first.
pub fn events() -> Vec<FlightEvent> {
    events_since(0)
}

/// Decode events recorded at or after `mark` (from [`mark`]).
pub fn events_since(mark: u64) -> Vec<FlightEvent> {
    match RING.get() {
        Some(r) => r.snapshot_since(mark),
        None => Vec::new(),
    }
}

/// Total events lost so far: overwritten by the bounded ring, plus the
/// (vanishingly rare) contention drops. Surfaced by
/// [`crate::export::summary_of`] and the dump's meta line so a truncated
/// recording is never silently read as complete.
pub fn overflowed() -> u64 {
    match RING.get() {
        Some(r) => r.lost(),
        None => 0,
    }
}

/// Write the ring to `path` as JSON lines: one `flight_meta` header line
/// (event count, overflow count, trace-ring drops, sampling rate), then
/// one line per event in timestamp order. The file is replaced atomically
/// (staged as `<path>.tmp`, then renamed), so a reader racing the dump
/// sees a previous complete dump or this one — never a torn file.
/// Returns the number of events written.
pub fn dump_jsonl(path: &Path) -> std::io::Result<usize> {
    let mut evs = events();
    evs.sort_by_key(|e| (e.t_ns, e.id));
    let mut out = String::with_capacity(128 + evs.len() * 128);
    out.push_str(&format!(
        "{{\"kind\":\"flight_meta\",\"version\":2,\"events\":{},\"overflowed\":{},\"trace_dropped\":{},\"sample\":{}}}\n",
        evs.len(),
        overflowed(),
        crate::trace::dropped_events(),
        SAMPLE.load(Ordering::Relaxed),
    ));
    for e in &evs {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    crate::fsio::write_atomic(path, out.as_bytes())?;
    Ok(evs.len())
}

/// Dump to the configured path (`MPICD_FLIGHT_PATH` or the default).
/// Returns the path and event count on success; errors are swallowed
/// (this runs from panic hooks and error paths).
pub fn dump_to_configured() -> Option<(PathBuf, usize)> {
    let path = crate::config::current().flight_path();
    dump_jsonl(&path).ok().map(|n| (path, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag and global ring are process-wide; unit tests here
    // exercise only local `Ring` instances and pure encode/decode, which
    // are safe under parallel test threads. Enabled end-to-end behaviour
    // lives in the crate's integration tests (own processes).

    fn ev(kind: EventKind, id: u64) -> FlightEvent {
        FlightEvent::new(kind, id)
            .at(123_456)
            .dur(789)
            .ranks(0, 3)
            .tag(-7)
            .bytes(4096)
            .method(Method::Pipelined)
            .aux(99)
            .lc(17)
            .parent(11)
    }

    #[test]
    fn encode_decode_roundtrip() {
        for kind in [
            EventKind::PostSend,
            EventKind::PostRecv,
            EventKind::Match,
            EventKind::FragPacked,
            EventKind::FragUnpacked,
            EventKind::WireModeled,
            EventKind::Complete,
            EventKind::Error,
        ] {
            let e = ev(kind, 42);
            assert_eq!(FlightEvent::decode(&e.encode()), Some(e));
        }
        // Negative ranks and tags survive the packing.
        let e = FlightEvent::new(EventKind::PostRecv, 1)
            .ranks(-1, 5)
            .tag(-2);
        let d = FlightEvent::decode(&e.encode()).unwrap();
        assert_eq!((d.src, d.dst, d.tag), (-1, 5, -2));
    }

    #[test]
    fn decode_rejects_garbage_kind() {
        let mut w = ev(EventKind::Match, 1).encode();
        w[5] = 0xff; // invalid kind byte
        assert_eq!(FlightEvent::decode(&w), None);
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let r = Ring::new(4);
        for i in 0..10u64 {
            r.push(ev(EventKind::Complete, i + 1).encode());
        }
        let evs = r.snapshot_since(0);
        let ids: Vec<u64> = evs.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "oldest six were overwritten");
        assert_eq!(r.lost(), 6);
    }

    #[test]
    fn ring_snapshot_since_scopes_window() {
        let r = Ring::new(16);
        r.push(ev(EventKind::PostSend, 1).encode());
        let mark = r.head.load(Ordering::Acquire);
        r.push(ev(EventKind::Complete, 2).encode());
        let evs = r.snapshot_since(mark);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, 2);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        // Hammer a tiny ring from several threads; every event that
        // survives must decode to one of the written payloads intact.
        let r = Ring::new(8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let id = t * 1_000_000 + i + 1;
                        r.push(
                            FlightEvent::new(EventKind::Complete, id)
                                .at(id)
                                .bytes(id)
                                .aux(id)
                                .encode(),
                        );
                    }
                });
            }
        });
        for e in r.snapshot_since(0) {
            assert_eq!(e.t_ns, e.id, "payload words all from one event");
            assert_eq!(e.bytes, e.id);
            assert_eq!(e.aux, e.id);
        }
    }

    #[test]
    fn json_line_shape() {
        let s = ev(EventKind::FragPacked, 9).to_json();
        assert!(s.starts_with("{\"kind\":\"frag_packed\",\"id\":9,"));
        assert!(s.contains("\"tag\":-7"));
        assert!(s.contains("\"method\":\"pipelined\""));
        assert!(s.contains("\"aux\":99"));
        assert!(s.ends_with("\"lc\":17,\"parent\":11}"));
    }
}

/// Model-checked seqlock protocol tests. Run with
/// `RUSTFLAGS="--cfg mpicd_check" cargo test -p mpicd-obs`; under that cfg
/// the ring's atomics resolve to `mpicd-check` instrumented primitives and
/// these tests explore thread interleavings and weak-memory outcomes.
#[cfg(all(test, mpicd_check))]
mod model_tests {
    use super::*;
    use mpicd_check::{model, thread as mthread, Model};
    use std::sync::Arc;

    /// A distinguishable payload: word `i` holds `base + i`, so any mix of
    /// two payloads (a torn read) breaks the pattern.
    fn pat(base: u64) -> [u64; WORDS] {
        std::array::from_fn(|i| base + i as u64)
    }

    /// Two writers race for the single slot of a capacity-1 ring. Whatever
    /// the interleaving, exactly one ticket ends up readable, its payload is
    /// untorn, and `lost()` accounts for the evicted/dropped event.
    #[test]
    fn concurrent_writers_preserve_slot_integrity() {
        model(|| {
            let ring = Arc::new(Ring::new(1));
            let (r1, r2) = (Arc::clone(&ring), Arc::clone(&ring));
            let t1 = mthread::spawn(move || r1.push(pat(1000)));
            let t2 = mthread::spawn(move || r2.push(pat(2000)));
            t1.join();
            t2.join();
            let reads = [ring.read(0), ring.read(1)];
            let intact: Vec<_> = reads.iter().flatten().collect();
            assert_eq!(
                intact.len(),
                1,
                "a capacity-1 ring keeps exactly one published ticket"
            );
            let words = *intact[0];
            assert!(
                words == pat(1000) || words == pat(2000),
                "published payload is one complete event, never a mix: {words:?}"
            );
            let lost = ring.lost();
            assert!(
                (1..=2).contains(&lost),
                "loss accounting covers the overwritten ticket (and a \
                 contention drop if the CAS lost): lost={lost}"
            );
        });
    }

    /// Ticket 0 is published, then a second writer overwrites the slot while
    /// the main thread reads ticket 0. The double-checked seqlock read must
    /// return either the complete ticket-0 payload or `None` — the
    /// `fence(Acquire)` + seq recheck forbids observing the overwrite
    /// half-done.
    #[test]
    fn reader_sees_complete_payload_or_nothing_under_overwrite() {
        model(|| {
            let ring = Arc::new(Ring::new(1));
            ring.push(pat(1000)); // ticket 0, published synchronously
            let r = Arc::clone(&ring);
            let w = mthread::spawn(move || r.push(pat(2000))); // laps ticket 0
            if let Some(words) = ring.read(0) {
                assert_eq!(
                    words,
                    pat(1000),
                    "an accepted ticket-0 read is the ticket-0 payload"
                );
            }
            w.join();
        });
    }

    /// A writer publishes concurrently with a reader polling its ticket: an
    /// accepted read carries the complete payload (release publish /
    /// acquire observe).
    #[test]
    fn concurrent_publish_is_all_or_nothing() {
        model(|| {
            let ring = Arc::new(Ring::new(2));
            let r = Arc::clone(&ring);
            let w = mthread::spawn(move || r.push(pat(7000)));
            if let Some(words) = ring.read(0) {
                assert_eq!(words, pat(7000), "publish is all-or-nothing");
            }
            w.join();
        });
    }

    /// `Ring::push` with the ISSUE-specified seeded mutation: the publishing
    /// `seq` store downgraded from `Release` to `Relaxed`. Everything else is
    /// identical to the real implementation.
    fn push_publish_relaxed(ring: &Ring, words: [u64; WORDS]) {
        let n = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(n % ring.slots.len() as u64) as usize];
        let cur = slot.seq.load(Ordering::Relaxed);
        let claimed = cur & 1 == 0
            && slot
                .seq
                .compare_exchange(
                    cur,
                    n.wrapping_mul(2).wrapping_add(1),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok();
        if !claimed {
            ring.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        // BUG under test: `Relaxed` where the real code uses `Release`, so
        // the payload stores are no longer ordered before the publish.
        slot.seq
            .store(n.wrapping_mul(2).wrapping_add(2), Ordering::Relaxed);
    }

    /// Negative test: the checker must catch the downgraded publish. With a
    /// `Relaxed` publish a reader that observes `seq == 2n+2` is *not*
    /// guaranteed to see the payload stores, so it can accept a stale
    /// (zeroed/partial) payload — the model checker must find such a
    /// schedule and report our assertion.
    #[test]
    fn checker_catches_relaxed_publish_mutation() {
        let failure = Model::new()
            .find_bug(|| {
                let ring = Arc::new(Ring::new(2));
                let r = Arc::clone(&ring);
                let w = mthread::spawn(move || push_publish_relaxed(&r, pat(7000)));
                if let Some(words) = ring.read(0) {
                    assert_eq!(words, pat(7000), "accepted read must be complete");
                }
                w.join();
            })
            .expect("the relaxed publish must be caught as a torn/stale read");
        assert!(
            failure.message.contains("accepted read must be complete"),
            "failure is our torn-read assertion: {}",
            failure.message
        );
    }
}
