//! Periodic background health snapshots.
//!
//! [`crate::flush`] is an *exit-time* flush: a soak run that streams
//! transfers for minutes produces no observable telemetry until the
//! process ends. Setting `MPICD_HEALTH_MS=N` (or installing a config
//! with [`crate::ObsConfig::health_ms`]) starts one detached background
//! thread that every `N` milliseconds:
//!
//! * appends one health-snapshot line — the
//!   [`crate::telemetry::render_health_json`] JSON object capturing every
//!   registered gauge (value + high-water mark), series (totals + last
//!   complete window) and sketch (count/sum/p50/p99/max) — to an
//!   in-memory log and rewrites the whole JSONL file atomically
//!   (`MPICD_HEALTH_PATH`, default `mpicd-health.jsonl`);
//! * rewrites the Prometheus exposition (`MPICD_TELEMETRY_PATH`) so a
//!   scraper sees live values, not end-of-run ones.
//!
//! Both files go through the tmp-then-rename path, so a concurrent
//! reader never observes a torn write. The snapshot log is bounded
//! ([`MAX_SNAPSHOTS`]); once full, the oldest lines are dropped — the
//! file is a sliding window, like the flight ring. `mpicd-inspect
//! health` reads the file back and joins it with sampled flight dumps.

use crate::sync::Mutex;
use std::path::PathBuf;
use std::sync::{Once, OnceLock};
use std::time::Duration;

/// Most snapshot lines retained in the health file (a sliding window;
/// at the default 1 s cadence this is over an hour of history).
pub const MAX_SNAPSHOTS: usize = 4096;

struct HealthLog {
    lines: Vec<String>,
    path: PathBuf,
}

static LOG: OnceLock<Mutex<HealthLog>> = OnceLock::new();
static STARTED: Once = Once::new();

fn log() -> &'static Mutex<HealthLog> {
    LOG.get_or_init(|| {
        Mutex::new(HealthLog {
            lines: Vec::new(),
            path: crate::config::current().health_path(),
        })
    })
}

/// Whether the background health thread has been started.
pub fn running() -> bool {
    STARTED.is_completed()
}

/// Take one health snapshot now: append a snapshot line and atomically
/// rewrite the health JSONL file and the telemetry exposition. This is
/// what the background thread does each tick; call it directly to force
/// a final snapshot (e.g. at the end of a soak's steady-state window).
pub fn tick() {
    let cfg = crate::config::current();
    let line = crate::telemetry::render_health_json();
    let mut log = log().lock();
    if log.lines.len() >= MAX_SNAPSHOTS {
        log.lines.remove(0);
    }
    log.lines.push(line);
    let mut out = String::with_capacity(log.lines.iter().map(|l| l.len() + 1).sum());
    for l in &log.lines {
        out.push_str(l);
        out.push('\n');
    }
    let path = log.path.clone();
    drop(log);
    if let Err(e) = crate::fsio::write_atomic(&path, out.as_bytes()) {
        eprintln!("[mpicd-obs] failed to write {}: {e}", path.display());
    }
    if crate::telemetry::enabled() {
        let tpath = cfg.telemetry_path();
        if let Err(e) = crate::telemetry::write_prometheus(&tpath) {
            eprintln!("[mpicd-obs] failed to write {}: {e}", tpath.display());
        }
    }
}

/// Start the background health thread if the current configuration asks
/// for it (`health_ms > 0`) and it is not already running. Called from
/// [`crate::ObsConfig::install`] and from the telemetry env
/// initialization, so `MPICD_HEALTH_MS` takes effect as soon as the
/// process touches telemetry. Idempotent.
pub fn ensure_started() {
    let ms = crate::config::current().health_ms;
    if ms == 0 {
        return;
    }
    STARTED.call_once(|| {
        // Resolve the output path once, before ticking starts.
        let _ = log();
        let interval = Duration::from_millis(ms.max(1));
        let spawned = std::thread::Builder::new()
            .name("mpicd-health".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                tick();
            });
        if let Err(e) = spawned {
            eprintln!("[mpicd-obs] failed to start health thread: {e}");
        } else {
            eprintln!(
                "[mpicd-obs] health snapshots every {ms} ms to {}",
                crate::config::current().health_path().display()
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The thread and Once are process-wide; unit tests exercise only the
    // snapshot/rewrite path with the thread left unstarted (health_ms
    // defaults to 0, so ensure_started is a no-op here).

    #[test]
    fn ensure_started_without_config_is_a_noop() {
        ensure_started();
        assert!(!running(), "health_ms=0 must not start the thread");
    }

    #[test]
    fn tick_appends_and_rewrites_atomically() {
        let dir = std::env::temp_dir().join("mpicd-obs-health-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("health.jsonl");
        log().lock().path = path.clone();
        tick();
        tick();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "one line per tick: {}", lines.len());
        for l in lines {
            assert!(l.starts_with("{\"kind\":\"health\","), "line shape: {l}");
            assert!(l.ends_with('}'));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
