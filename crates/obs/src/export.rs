//! Exporters: Chrome trace-event JSON and a human-readable summary table.
//!
//! The Chrome format is the trace-event "JSON object format": an object
//! with a `traceEvents` array of complete (`"ph":"X"`) events, loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
//! microseconds (fractional, preserving ns resolution).

use crate::metrics::{self, HistSummary};
use crate::trace::{self, Event};
use std::fmt::Write as _;
use std::path::Path;

/// Minimal JSON string escaping (names/categories are ASCII literals, but
/// be correct anyway).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render `events` as Chrome trace-event JSON.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape(e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape(e.cat, &mut out);
        // ts/dur in microseconds with ns resolution kept as fraction.
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":0,\"tid\":{}",
            e.start_ns / 1000,
            e.start_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
            e.tid
        );
        if e.bytes > 0 {
            let _ = write!(out, ",\"args\":{{\"bytes\":{}}}", e.bytes);
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Drain all recorded spans and write them to `path` as Chrome trace
/// JSON, replacing the file atomically (staged as `<path>.tmp`, then
/// renamed). Returns the number of events written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let events = trace::take_events();
    let json = chrome_trace_json(&events);
    crate::fsio::write_atomic(path, json.as_bytes())?;
    Ok(events.len())
}

fn render_hist_row(out: &mut String, name: &str, h: &HistSummary, unit: &str) {
    let _ = writeln!(
        out,
        "  {name:<34} n={:<10} mean={:<12.1} p50={:<10} p99={:<10} max={} {unit}",
        h.count,
        h.mean(),
        h.p50(),
        h.p99(),
        h.max,
    );
}

/// Render a summary of `snapshot` for humans.
pub fn summary_of(snapshot: &metrics::Snapshot) -> String {
    let mut out = String::new();
    out.push_str("== mpicd-obs metrics summary ==\n");
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<34} {v}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snapshot.histograms {
            let unit = if name.ends_with("_ns") || name.contains("_ns_") {
                "ns"
            } else if name.contains("bytes") || name.contains("size") {
                "B"
            } else {
                ""
            };
            render_hist_row(&mut out, name, h, unit);
        }
    }
    let dropped = trace::dropped_events();
    if dropped > 0 {
        let _ = writeln!(out, "(trace ring buffers overwrote {dropped} events)");
    }
    let lost = crate::flight::overflowed();
    if lost > 0 {
        let _ = writeln!(out, "(flight ring overwrote {lost} events)");
    }
    out
}

/// Summary of the process-global registry.
pub fn summary() -> String {
    summary_of(&metrics::global().snapshot())
}

/// Render a metrics [`metrics::Snapshot`] as a JSON object:
/// `{"counters":{name:value,...},"histograms":{name:{count,mean,p50,p99,max},...}}`.
pub fn metrics_json(snapshot: &metrics::Snapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(name, &mut out);
        let _ = write!(out, "\":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(name, &mut out);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"max\":{}}}",
            h.count,
            h.mean(),
            h.p50(),
            h.p99(),
            h.max,
        );
    }
    out.push_str("}}\n");
    out
}

/// Write the process-global metrics snapshot to `path` as JSON
/// (the `MPICD_METRICS_JSON` artifact), replacing the file atomically
/// (staged as `<path>.tmp`, then renamed).
pub fn write_metrics_json(path: &Path) -> std::io::Result<()> {
    let json = metrics_json(&metrics::global().snapshot());
    crate::fsio::write_atomic(path, json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn ev(name: &'static str, start: u64, dur: u64, bytes: u64, tid: u64) -> Event {
        Event {
            name,
            cat: "test",
            start_ns: start,
            dur_ns: dur,
            bytes,
            tid,
        }
    }

    /// A tiny structural JSON validator: walks the string and checks
    /// balanced braces/brackets outside string literals.
    fn assert_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced JSON");
    }

    #[test]
    fn chrome_json_shape() {
        let events = vec![ev("pack", 1500, 250, 64, 0), ev("wire", 2000, 1300, 64, 1)];
        let json = chrome_trace_json(&events);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"pack\""));
        assert!(json.contains("\"ph\":\"X\""));
        // 1500 ns == 1.500 µs.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"args\":{\"bytes\":64}"));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn chrome_json_empty() {
        let json = chrome_trace_json(&[]);
        assert_balanced_json(&json);
        assert!(json.contains("\"traceEvents\":["));
    }

    #[test]
    fn chrome_json_escapes_names() {
        let mut s = String::new();
        escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn metrics_json_shape() {
        let r = Registry::new();
        r.counter("fabric.messages").add(7);
        r.histogram("fabric.msg_bytes").record(4096);
        let json = metrics_json(&r.snapshot());
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"fabric.messages\":7"));
        assert!(json.contains("\"fabric.msg_bytes\":{\"count\":1,"));
        assert!(json.contains("\"max\":4096"));
    }

    #[test]
    fn metrics_json_empty_registry() {
        let json = metrics_json(&Registry::new().snapshot());
        assert_balanced_json(&json);
        assert_eq!(json.trim(), "{\"counters\":{},\"histograms\":{}}");
    }

    #[test]
    fn summary_renders_counters_and_hists() {
        let r = Registry::new();
        r.counter("fabric.messages").add(7);
        r.histogram("fabric.pack_frag_ns").record(1000);
        let s = summary_of(&r.snapshot());
        assert!(s.contains("fabric.messages"));
        assert!(s.contains('7'));
        assert!(s.contains("fabric.pack_frag_ns"));
        assert!(s.contains("p99"));
    }
}
