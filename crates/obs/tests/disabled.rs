//! Disabled-mode behaviour — runs in its own process (no other test here
//! may enable tracing or the flight recorder) so the default-off state is
//! actually observable.

use mpicd_obs::{flight, trace};

#[test]
fn disabled_spans_record_nothing() {
    assert!(!mpicd_obs::enabled(), "tracing must default to off");

    {
        let _sp = mpicd_obs::span!("invisible", "test", 42);
    }
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let _sp = mpicd_obs::span!("worker", "test");
            });
        }
    });
    trace::record("direct", "test", 1, 2, 3);

    assert!(trace::take_events().is_empty(), "no events when disabled");
    assert_eq!(trace::dropped_events(), 0);
}

#[test]
fn disabled_span_acc_leaves_counter_at_zero() {
    let c = mpicd_obs::Counter::new();
    {
        let _sp = trace::span_acc("timed", "test", 0, &c);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(c.get(), 0, "span_acc must not time while disabled");
}

#[test]
fn disabled_flush_is_noop() {
    assert!(
        mpicd_obs::flush().is_none(),
        "flush writes nothing when off"
    );
}

#[test]
fn disabled_flight_recorder_records_nothing() {
    assert!(!flight::enabled(), "flight recorder must default to off");
    assert_eq!(flight::next_id(), 0, "disabled ids are 0");
    assert_eq!(flight::clock(7), 0, "clock never read when disabled");

    flight::record(flight::FlightEvent::new(flight::EventKind::PostSend, 7).bytes(64));
    flight::record_frag(flight::EventKind::FragPacked, 7, 1, 64, 0);

    assert!(flight::events().is_empty(), "no events when disabled");
    assert_eq!(flight::overflowed(), 0);
}

#[test]
fn summary_of_empty_registry_is_zeroed() {
    let reg = mpicd_obs::Registry::new();
    reg.counter("untouched");
    let snap = reg.snapshot();
    assert_eq!(snap.counter("untouched"), 0);
    let text = mpicd_obs::export::summary_of(&snap);
    assert!(text.contains("untouched"));
    assert!(text.contains('0'));
}
