//! Disabled-mode behaviour — runs in its own process (no other test here
//! may enable tracing or the flight recorder) so the default-off state is
//! actually observable.

use mpicd_obs::{causal, flight, telemetry, trace};

#[test]
fn disabled_spans_record_nothing() {
    assert!(!mpicd_obs::enabled(), "tracing must default to off");

    {
        let _sp = mpicd_obs::span!("invisible", "test", 42);
    }
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let _sp = mpicd_obs::span!("worker", "test");
            });
        }
    });
    trace::record("direct", "test", 1, 2, 3);

    assert!(trace::take_events().is_empty(), "no events when disabled");
    assert_eq!(trace::dropped_events(), 0);
}

#[test]
fn disabled_span_acc_leaves_counter_at_zero() {
    let c = mpicd_obs::Counter::new();
    {
        let _sp = trace::span_acc("timed", "test", 0, &c);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(c.get(), 0, "span_acc must not time while disabled");
}

#[test]
fn disabled_flush_is_noop() {
    assert!(
        mpicd_obs::flush().is_none(),
        "flush writes nothing when off"
    );
}

#[test]
fn disabled_flight_recorder_records_nothing() {
    assert!(!flight::enabled(), "flight recorder must default to off");
    assert_eq!(flight::next_id(), 0, "disabled ids are 0");
    assert_eq!(flight::clock(7), 0, "clock never read when disabled");

    flight::record(flight::FlightEvent::new(flight::EventKind::PostSend, 7).bytes(64));
    flight::record_frag(flight::EventKind::FragPacked, 7, 1, 64, 0, 0);

    assert!(flight::events().is_empty(), "no events when disabled");
    assert_eq!(flight::overflowed(), 0);
}

#[test]
fn disabled_telemetry_records_nothing() {
    // Mirrors the flight.rs discipline: off by default, every hot-path
    // entry point short-circuits on one relaxed atomic load, and nothing
    // is accumulated while disabled.
    assert!(!telemetry::enabled(), "telemetry must default to off");
    assert_eq!(telemetry::clock(), 0, "clock never read when disabled");

    let sk = telemetry::sketch("disabled.sketch");
    let se = telemetry::series("disabled.series");
    for v in [1u64, 1000, 1_000_000] {
        sk.record(v);
        se.add(v);
    }
    assert_eq!(sk.count(), 0, "disabled sketch records nothing");
    assert_eq!(sk.p99(), 0);
    assert_eq!(se.totals(), (0, 0), "disabled series accumulates nothing");
}

#[test]
fn disabled_causal_capture_never_ticks() {
    // A disabled flight recorder hands out id 0; capture must then be a
    // pure zero-cost no-op that leaves the rank clock untouched.
    let rank = 777; // owned by this test; no other test ticks it
    let ctx = causal::CausalContext::capture(rank, flight::next_id());
    assert_eq!(ctx, causal::CausalContext::default());
    assert_eq!(causal::current(rank), 0, "no tick without a flight id");
}

#[test]
fn summary_of_empty_registry_is_zeroed() {
    let reg = mpicd_obs::Registry::new();
    reg.counter("untouched");
    let snap = reg.snapshot();
    assert_eq!(snap.counter("untouched"), 0);
    let text = mpicd_obs::export::summary_of(&snap);
    assert!(text.contains("untouched"));
    assert!(text.contains('0'));
}
