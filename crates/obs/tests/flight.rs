//! Flight-recorder behaviour with the recorder enabled. Runs in its own
//! process so the ring capacity can be pinned before the first event
//! fixes it, and so no other test's events leak into the window
//! assertions. The ring and enable flag are process-global, so this is
//! one sequential test.

use mpicd_obs::flight::{self, EventKind, FlightEvent, Method};
use mpicd_obs::ObsConfig;

#[test]
fn flight_ring_end_to_end() {
    // Pin a tiny ring; the capacity freezes at the first recorded event.
    ObsConfig::default()
        .flight(true)
        .flight_capacity(64)
        .install();
    assert!(flight::enabled());

    // Ids are unique and non-zero while enabled.
    let a = flight::next_id();
    let b = flight::next_id();
    assert!(a != 0 && b != 0 && a != b);

    // Round-trip one fully-populated event through the ring.
    let mark = flight::mark();
    flight::record(
        FlightEvent::new(EventKind::PostSend, a)
            .ranks(0, 1)
            .tag(-7)
            .bytes(4096)
            .method(Method::Rendezvous)
            .aux(3),
    );
    let evs = flight::events_since(mark);
    assert_eq!(evs.len(), 1);
    let e = evs[0];
    assert_eq!(e.kind, EventKind::PostSend);
    assert_eq!((e.id, e.src, e.dst, e.tag), (a, 0, 1, -7));
    assert_eq!((e.bytes, e.aux), (4096, 3));
    assert_eq!(e.method, Method::Rendezvous);
    assert!(e.t_ns > 0, "zero timestamps are stamped at record time");

    // clock() + record_frag measure an externally-timed duration.
    let mark = flight::mark();
    let t0 = flight::clock(a);
    assert!(t0 > 0);
    flight::record_frag(EventKind::FragPacked, a, t0, 512, 64, 9);
    let evs = flight::events_since(mark);
    assert_eq!(evs.len(), 1);
    assert_eq!((evs[0].t_ns, evs[0].bytes, evs[0].aux), (t0, 512, 64));
    assert_eq!(evs[0].lc, 9, "fragments carry the transfer's Lamport clock");

    // Causal fields survive the ring.
    let mark = flight::mark();
    flight::record(
        FlightEvent::new(EventKind::Match, a)
            .ranks(0, 1)
            .lc(21)
            .parent(20),
    );
    let evs = flight::events_since(mark);
    assert_eq!((evs[0].lc, evs[0].parent), (21, 20));

    // Overflow: write far past capacity; old events are lost, counted,
    // and the ring never yields more than its capacity.
    let lost_before = flight::overflowed();
    for i in 0..200 {
        flight::record(FlightEvent::new(EventKind::Complete, b).aux(i));
    }
    assert!(flight::overflowed() > lost_before, "overflow is counted");
    let n_live = flight::events().len();
    assert!(n_live <= 64, "ring is bounded ({n_live} events)");

    // Dump: one meta header line plus one JSON line per intact event.
    let path = std::env::temp_dir().join(format!("mpicd-flight-test-{}.jsonl", std::process::id()));
    let n = flight::dump_jsonl(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let mut lines = text.lines();
    let meta = lines.next().unwrap();
    assert!(meta.starts_with("{\"kind\":\"flight_meta\",\"version\":2,"));
    assert!(meta.contains(&format!("\"events\":{n}")));
    let body: Vec<&str> = lines.collect();
    assert_eq!(body.len(), n);
    assert!(body
        .iter()
        .all(|l| l.starts_with("{\"kind\":\"") && l.ends_with('}')));

    // Single-threaded recording reads back in time order.
    let ts: Vec<u64> = flight::events().iter().map(|e| e.t_ns).collect();
    let mut sorted = ts.clone();
    sorted.sort_unstable();
    assert_eq!(ts, sorted);
    assert_eq!(ts.len(), n_live);

    // Toggling off makes ids 0 again and recording a no-op.
    flight::set_enabled(false);
    assert_eq!(flight::next_id(), 0);
    assert_eq!(flight::clock(a), 0);
    let mark = flight::mark();
    flight::record(FlightEvent::new(EventKind::Error, a).aux(1));
    assert!(flight::events_since(mark).is_empty());
}
