//! Sampling-knob cost discipline — runs in its own process so the
//! recorder's global enable flag and sample tick are observable from a
//! known-clean state (one sequential test; no other test file shares
//! this process).

use mpicd_obs::flight;

#[test]
fn disabled_sampling_path_is_one_relaxed_load() {
    assert!(!flight::enabled(), "recorder must default to off");

    // With a sample rate armed but the recorder off, next_id() must take
    // the disabled early-out: id 0, and — the part a timing test can't
    // see — *no* sample-tick consumption. The tick counter is private,
    // so pin it observationally: tick 0 is always sampled, so if the
    // disabled calls below consumed ticks, the first enabled call would
    // land mid-cycle and miss its sample slot.
    flight::set_sample(4);
    for _ in 0..13 {
        assert_eq!(flight::next_id(), 0, "disabled ids are 0");
    }

    flight::set_enabled(true);
    let first = flight::next_id();
    assert_ne!(
        first, 0,
        "disabled next_id() calls must not advance the sample tick"
    );
    // And the cycle continues from there: the next rate-1 ids are again
    // unsampled until the tick wraps the rate.
    assert_eq!(flight::next_id(), 0, "tick 1 of 4 is unsampled");
    assert_eq!(flight::next_id(), 0, "tick 2 of 4 is unsampled");
    assert_eq!(flight::next_id(), 0, "tick 3 of 4 is unsampled");
    assert_ne!(flight::next_id(), 0, "tick 4 of 4 starts the next cycle");

    flight::set_enabled(false);
    flight::set_sample(1);
}
