//! Telemetry-registry behaviour with telemetry enabled. Runs in its own
//! process (the enable flag is process-global and `disabled.rs` asserts
//! the default-off state).

use mpicd_obs::{telemetry, ObsConfig};

#[test]
fn telemetry_end_to_end() {
    ObsConfig::default()
        .telemetry(true)
        .telemetry_window_ms(1_000)
        .install();
    assert!(telemetry::enabled());
    assert!(telemetry::clock() > 0, "clock reads while enabled");

    // Sketch: gated recording works and quantiles come back sane.
    let lat = telemetry::sketch("test.lat_ns");
    for v in 1..=100u64 {
        lat.record(v * 1_000);
    }
    assert_eq!(lat.count(), 100);
    assert_eq!(lat.max(), 100_000);
    let p50 = lat.p50();
    assert!((45_000..=65_000).contains(&p50), "p50 ≈ 50k, got {p50}");
    assert!(lat.p99() >= p50, "quantiles are monotone");

    // Series: adds accumulate into totals and the current window.
    let msgs = telemetry::series("test.msgs");
    for _ in 0..10 {
        msgs.add(64);
    }
    assert_eq!(msgs.totals(), (10, 640));
    let (wc, ws) = msgs.current_window();
    assert_eq!((wc, ws), (10, 640), "1s window holds the whole burst");

    // Exposition covers both instruments; flush writes it to the
    // configured path.
    let path = std::env::temp_dir().join(format!("mpicd-tele-test-{}.prom", std::process::id()));
    ObsConfig::default()
        .telemetry(true)
        .telemetry_file(&path)
        .install();
    mpicd_obs::flush();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(text.contains("# TYPE mpicd_test_lat_ns summary"));
    assert!(text.contains("mpicd_test_lat_ns{quantile=\"0.5\"}"));
    assert!(text.contains("mpicd_test_lat_ns_count 100"));
    assert!(text.contains("mpicd_test_msgs_total 10"));
    assert!(text.contains("mpicd_test_msgs_sum 640"));

    // Toggling off restores the disabled discipline.
    telemetry::set_enabled(false);
    lat.record(1);
    msgs.add(1);
    assert_eq!(lat.count(), 100, "no recording once disabled");
    assert_eq!(msgs.totals(), (10, 640));
    assert_eq!(telemetry::clock(), 0);
}
