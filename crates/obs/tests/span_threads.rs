//! Enabled-mode tracing across threads — runs in its own process so the
//! global enable flag cannot leak into other tests.

use mpicd_obs::trace::{self, Event};

#[test]
fn spans_nest_and_interleave_across_threads() {
    mpicd_obs::set_enabled(true);
    let _ = trace::take_events(); // start clean

    // Main thread: an outer span with two nested children.
    {
        let _outer = mpicd_obs::span!("outer", "test", 100);
        {
            let _inner = mpicd_obs::span!("inner_a", "test");
        }
        {
            let _inner = mpicd_obs::span!("inner_b", "test", 7);
        }
    }

    // Worker threads record into their own rings concurrently.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10 {
                    let _sp = mpicd_obs::span!("worker", "test");
                }
            });
        }
    });

    let events = trace::take_events();
    let by_name = |n: &str| -> Vec<&Event> { events.iter().filter(|e| e.name == n).collect() };

    assert_eq!(by_name("outer").len(), 1);
    assert_eq!(by_name("inner_a").len(), 1);
    assert_eq!(by_name("inner_b").len(), 1);
    assert_eq!(by_name("worker").len(), 40);

    // Nesting: children start no earlier than the parent and end within it.
    let outer = by_name("outer")[0];
    assert_eq!(outer.bytes, 100);
    for child in ["inner_a", "inner_b"] {
        let c = by_name(child)[0];
        assert!(c.start_ns >= outer.start_ns, "{child} starts inside outer");
        assert!(
            c.start_ns + c.dur_ns <= outer.start_ns + outer.dur_ns,
            "{child} ends inside outer"
        );
        assert_eq!(c.tid, outer.tid, "same thread as parent");
    }
    assert_eq!(by_name("inner_b")[0].bytes, 7);

    // Workers came from distinct thread ids, none of them the main thread's.
    let worker_tids: std::collections::BTreeSet<u64> =
        by_name("worker").iter().map(|e| e.tid).collect();
    assert_eq!(worker_tids.len(), 4, "one ring per worker thread");
    assert!(!worker_tids.contains(&outer.tid));

    // take_events drained everything: a second take is empty.
    assert!(trace::take_events().is_empty());
}

#[test]
fn events_are_sorted_by_start_time() {
    mpicd_obs::set_enabled(true);
    let _ = trace::take_events();
    // Record out of order across synthetic timestamps.
    trace::record("late", "test", 3000, 10, 0);
    trace::record("early", "test", 1000, 10, 0);
    trace::record("mid", "test", 2000, 10, 0);
    let events = trace::take_events();
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert_eq!(names, vec!["early", "mid", "late"]);
}
