/*
 * mpicd_custom.h — the proposed MPI custom datatype serialization API.
 *
 * C declarations matching the paper's Listings 2–5 ("Improving MPI Language
 * Support Through Custom Datatype Serialization", SC 2024) as implemented by
 * the mpicd-capi crate. A C translation unit including this header links
 * against the Rust staticlib; the signatures below are the ABI the crate's
 * `extern "C"` functions export (see crates/capi/src/).
 *
 * Every callback returns MPI_SUCCESS or a nonzero application error code,
 * which the implementation propagates to the initiating call.
 */

#ifndef MPICD_CUSTOM_H
#define MPICD_CUSTOM_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef int64_t MPI_Count;
typedef int MPI_Datatype;
typedef int MPI_Request;
typedef int MPI_Comm;

#define MPI_SUCCESS 0
#define MPI_ERR_TYPE 3
#define MPI_ERR_RANK 6
#define MPI_ERR_ARG 12
#define MPI_ERR_TRUNCATE 15
#define MPI_ERR_INTERN 17
#define MPI_ERR_REQUEST 19

#define MPI_COMM_WORLD 91
#define MPI_BYTE 1
#define MPI_INT 2
#define MPI_DOUBLE 3
#define MPI_FLOAT 4
#define MPI_INT64_T 5
#define MPI_REQUEST_NULL (-1)
#define MPI_ANY_SOURCE (-1)
#define MPI_ANY_TAG (-2)

typedef struct MPI_Status {
    int MPI_SOURCE;
    int MPI_TAG;
    int MPI_ERROR;
    MPI_Count count;
} MPI_Status;

#define MPI_STATUS_IGNORE ((MPI_Status *)0)

/* ---- Listing 3: state management --------------------------------------- */

/* Create per-operation state for a buffer/count pair. */
typedef int (MPI_Type_custom_state_function)(
    void *context,        /* context passed to the create function  */
    const void *src,      /* buffer provided to MPI                 */
    MPI_Count src_count,  /* count provided to MPI                  */
    void **state);        /* out: state passed into callbacks       */

/* Release per-operation state at completion. */
typedef int (MPI_Type_custom_state_free_function)(void *state);

/* ---- Listing 4: query / pack / unpack ----------------------------------- */

/* Report the total packed size of the buffer. */
typedef int (MPI_Type_custom_query_function)(
    void *state,
    const void *buf,
    MPI_Count count,
    MPI_Count *packed_size);

/* Pack one fragment at a virtual byte offset; may partially fill dst. */
typedef int (MPI_Type_custom_pack_function)(
    void *state,
    const void *buf,
    MPI_Count count,
    MPI_Count offset,     /* virtual offset into the packed buffer  */
    void *dst,
    MPI_Count dst_size,
    MPI_Count *used);     /* out: bytes written                     */

/* Unpack one received fragment at a virtual byte offset. */
typedef int (MPI_Type_custom_unpack_function)(
    void *state,
    void *buf,
    MPI_Count count,
    MPI_Count offset,
    const void *src,
    MPI_Count src_size);

/* ---- Listing 5: memory regions ------------------------------------------ */

/* Report how many contiguous regions the buffer exposes. */
typedef int (MPI_Type_custom_region_count_function)(
    void *state,
    void *buf,
    MPI_Count count,
    MPI_Count *region_count);

/* Fill the per-region base/length/type arrays (region_count entries). */
typedef int (MPI_Type_custom_region_function)(
    void *state,
    void *buf,
    MPI_Count count,
    MPI_Count region_count,
    void *reg_bases[],
    MPI_Count reg_lens[],
    MPI_Datatype reg_types[]);

/* ---- Listing 2: type creation ------------------------------------------- */

int MPI_Type_create_custom(
    MPI_Type_custom_state_function *statefn,
    MPI_Type_custom_state_free_function *freefn,
    MPI_Type_custom_query_function *queryfn,
    MPI_Type_custom_pack_function *packfn,
    MPI_Type_custom_unpack_function *unpackfn,
    MPI_Type_custom_region_count_function *region_countfn,
    MPI_Type_custom_region_function *regionfn,
    void *context,
    int inorder,          /* flag indicating in-order pack requirement */
    MPI_Datatype *type);

int MPI_Type_free(MPI_Datatype *datatype);

/* ---- classic derived datatypes (the comparison baseline) ---------------- */

int MPI_Type_contiguous(MPI_Count count, MPI_Datatype oldtype,
                        MPI_Datatype *newtype);
int MPI_Type_vector(MPI_Count count, MPI_Count blocklength, MPI_Count stride,
                    MPI_Datatype oldtype, MPI_Datatype *newtype);
int MPI_Type_create_struct(MPI_Count count, const MPI_Count blocklengths[],
                           const MPI_Count displacements[],
                           const MPI_Datatype types[], MPI_Datatype *newtype);
int MPI_Type_commit(MPI_Datatype *datatype);
int MPI_Get_count(const MPI_Status *status, MPI_Datatype datatype,
                  MPI_Count *count);

/* ---- point-to-point ------------------------------------------------------ */

int MPI_Comm_rank(MPI_Comm comm, int *rank);
int MPI_Comm_size(MPI_Comm comm, int *size);

int MPI_Send(const void *buf, MPI_Count count, MPI_Datatype datatype,
             int dest, int tag, MPI_Comm comm);
int MPI_Recv(void *buf, MPI_Count count, MPI_Datatype datatype,
             int source, int tag, MPI_Comm comm, MPI_Status *status);
int MPI_Isend(const void *buf, MPI_Count count, MPI_Datatype datatype,
              int dest, int tag, MPI_Comm comm, MPI_Request *request);
int MPI_Irecv(void *buf, MPI_Count count, MPI_Datatype datatype,
              int source, int tag, MPI_Comm comm, MPI_Request *request);
int MPI_Wait(MPI_Request *request, MPI_Status *status);
int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]);

int MPI_Probe_sim(int source, int tag, MPI_Comm comm, MPI_Status *status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int *flag,
               MPI_Status *status);
int MPI_Mprobe_sim(int source, int tag, MPI_Comm comm, MPI_Request *message,
                   MPI_Status *status);
int MPI_Mrecv_sim(void *buf, MPI_Count count, MPI_Request *message,
                  MPI_Status *status);

/* ---- simulated process model --------------------------------------------
 * Real MPI ranks are processes; this in-process build runs them on threads:
 * create the world once, then bind each rank thread. (Exposed from Rust as
 * ordinary functions, not extern "C", since they exist only in simulation.)
 * ------------------------------------------------------------------------- */

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* MPICD_CUSTOM_H */
