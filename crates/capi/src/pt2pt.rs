//! Point-to-point calls over the simulated world.
//!
//! Buffers of `MPI_BYTE` take the contiguous fast path; custom datatype
//! handles route through the callback adapters. `count` counts *elements of
//! the datatype* (bytes for `MPI_BYTE`, whole application objects for
//! custom types — the same convention the paper's prototype uses).

use crate::adapter::{CCustomPack, CCustomUnpack};
use crate::ctypes::*;
use crate::handles::{
    current_comm, lookup_type, register_request, take_request, RequestEntry, TypeEntry,
};
use mpicd::fabric::{IovEntry, IovEntryMut, RecvDesc, SendDesc};
use std::os::raw::{c_int, c_void};

/// Bytes per element for predefined handles (None = not predefined).
fn predefined_size(datatype: MPI_Datatype) -> Option<usize> {
    match datatype {
        MPI_BYTE => Some(1),
        MPI_INT | MPI_FLOAT => Some(4),
        MPI_DOUBLE | MPI_INT64_T => Some(8),
        _ => None,
    }
}

fn write_status(status: *mut MPI_Status, st: mpicd::Status) {
    if !status.is_null() {
        // SAFETY: caller passed a valid status pointer (or IGNORE).
        unsafe {
            *status = MPI_Status {
                MPI_SOURCE: st.source as c_int,
                MPI_TAG: st.tag,
                MPI_ERROR: MPI_SUCCESS,
                count: st.bytes as MPI_Count,
            };
        }
    }
}

/// This thread's rank in the world.
///
/// # Safety
/// `rank` must be a valid pointer.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Comm_rank(comm: MPI_Comm, rank: *mut c_int) -> c_int {
    if comm != MPI_COMM_WORLD || rank.is_null() {
        return MPI_ERR_ARG;
    }
    match current_comm() {
        Ok(c) => {
            *rank = c.rank() as c_int;
            MPI_SUCCESS
        }
        Err(code) => code,
    }
}

/// World size.
///
/// # Safety
/// `size` must be a valid pointer.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Comm_size(comm: MPI_Comm, size: *mut c_int) -> c_int {
    if comm != MPI_COMM_WORLD || size.is_null() {
        return MPI_ERR_ARG;
    }
    match current_comm() {
        Ok(c) => {
            *size = c.size() as c_int;
            MPI_SUCCESS
        }
        Err(code) => code,
    }
}

/// Blocking send.
///
/// # Safety
/// `buf` must be valid for `count` elements of `datatype` for the duration
/// of the call; callbacks must follow their contracts.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Send(
    buf: *const c_void,
    count: MPI_Count,
    datatype: MPI_Datatype,
    dest: c_int,
    tag: c_int,
    comm: MPI_Comm,
) -> c_int {
    if comm != MPI_COMM_WORLD || dest < 0 || count < 0 {
        return MPI_ERR_ARG;
    }
    let _sp = mpicd_obs::span!("MPI_Send", "capi");
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    if let Some(sz) = predefined_size(datatype) {
        let req = match c.endpoint().post_send(
            SendDesc::Contig(IovEntry {
                ptr: buf as *const u8,
                len: count as usize * sz,
            }),
            dest as usize,
            tag,
        ) {
            Ok(r) => r,
            Err(_) => return MPI_ERR_RANK,
        };
        return match req.wait() {
            Ok(_) => MPI_SUCCESS,
            Err(_) => MPI_ERR_INTERN,
        };
    }
    match lookup_type(datatype) {
        Ok(TypeEntry::Custom(cb)) => {
            let ctx = match CCustomPack::new(cb, buf, count) {
                Ok(ctx) => ctx,
                Err(e) => return e.code(),
            };
            match c.send_custom(Box::new(ctx), dest as usize, tag) {
                Ok(_) => MPI_SUCCESS,
                Err(e) => e.code(),
            }
        }
        Ok(TypeEntry::Committed(ty)) => {
            let req = match c.post_typed_send(
                buf as *const u8,
                count as usize,
                &ty,
                dest as usize,
                tag,
            ) {
                Ok(r) => r,
                Err(e) => return e.code(),
            };
            match req.wait() {
                Ok(_) => MPI_SUCCESS,
                Err(_) => MPI_ERR_INTERN,
            }
        }
        Ok(TypeEntry::Derived(_)) => MPI_ERR_TYPE, // must commit first
        Err(code) => code,
    }
}

/// Blocking receive.
///
/// # Safety
/// `buf` must be valid and exclusively held for `count` elements of
/// `datatype` for the duration of the call.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Recv(
    buf: *mut c_void,
    count: MPI_Count,
    datatype: MPI_Datatype,
    source: c_int,
    tag: c_int,
    comm: MPI_Comm,
    status: *mut MPI_Status,
) -> c_int {
    if comm != MPI_COMM_WORLD || count < 0 {
        return MPI_ERR_ARG;
    }
    let _sp = mpicd_obs::span!("MPI_Recv", "capi");
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    if let Some(sz) = predefined_size(datatype) {
        let req = match c.endpoint().post_recv(
            RecvDesc::Contig(IovEntryMut {
                ptr: buf as *mut u8,
                len: count as usize * sz,
            }),
            source,
            tag,
        ) {
            Ok(r) => r,
            Err(_) => return MPI_ERR_RANK,
        };
        return match req.wait() {
            Ok(env) => {
                write_status(status, env.into());
                MPI_SUCCESS
            }
            Err(mpicd::fabric::FabricError::Truncated { .. }) => MPI_ERR_TRUNCATE,
            Err(_) => MPI_ERR_INTERN,
        };
    }
    match lookup_type(datatype) {
        Ok(TypeEntry::Custom(cb)) => {
            let mut ctx = match CCustomUnpack::new(cb, buf, count) {
                Ok(ctx) => ctx,
                Err(e) => return e.code(),
            };
            match c.recv_custom(&mut ctx, source, tag) {
                Ok(st) => {
                    write_status(status, st);
                    MPI_SUCCESS
                }
                Err(e) => e.code(),
            }
        }
        Ok(TypeEntry::Committed(ty)) => {
            let req = match c.post_typed_recv(buf as *mut u8, count as usize, &ty, source, tag) {
                Ok(r) => r,
                Err(e) => return e.code(),
            };
            match req.wait() {
                Ok(env) => {
                    write_status(status, env.into());
                    MPI_SUCCESS
                }
                Err(mpicd::fabric::FabricError::Truncated { .. }) => MPI_ERR_TRUNCATE,
                Err(_) => MPI_ERR_INTERN,
            }
        }
        Ok(TypeEntry::Derived(_)) => MPI_ERR_TYPE,
        Err(code) => code,
    }
}

/// Nonblocking send; complete with [`MPI_Wait`].
///
/// # Safety
/// `buf` must stay valid and unmodified until the request completes.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Isend(
    buf: *const c_void,
    count: MPI_Count,
    datatype: MPI_Datatype,
    dest: c_int,
    tag: c_int,
    comm: MPI_Comm,
    request: *mut MPI_Request,
) -> c_int {
    if comm != MPI_COMM_WORLD || dest < 0 || count < 0 || request.is_null() {
        return MPI_ERR_ARG;
    }
    let _sp = mpicd_obs::span!("MPI_Isend", "capi");
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    if let Some(sz) = predefined_size(datatype) {
        let req = match c.endpoint().post_send(
            SendDesc::Contig(IovEntry {
                ptr: buf as *const u8,
                len: count as usize * sz,
            }),
            dest as usize,
            tag,
        ) {
            Ok(r) => r,
            Err(_) => return MPI_ERR_RANK,
        };
        *request = register_request(RequestEntry {
            request: req,
            send_keepalive: None,
            recv_keepalive: None,
        });
        return MPI_SUCCESS;
    }
    let cb = match lookup_type(datatype) {
        Ok(TypeEntry::Custom(cb)) => cb,
        Ok(TypeEntry::Committed(ty)) => {
            let req = match c.post_typed_send(
                buf as *const u8,
                count as usize,
                &ty,
                dest as usize,
                tag,
            ) {
                Ok(r) => r,
                Err(e) => return e.code(),
            };
            *request = register_request(RequestEntry {
                request: req,
                send_keepalive: None,
                recv_keepalive: None,
            });
            return MPI_SUCCESS;
        }
        Ok(TypeEntry::Derived(_)) => return MPI_ERR_TYPE,
        Err(code) => return code,
    };
    let ctx = match CCustomPack::new(cb, buf, count) {
        Ok(ctx) => Box::new(ctx),
        Err(e) => return e.code(),
    };
    // The adapter is 'static (raw pointers only), so it can cross into the
    // fabric whole; we keep no second copy.
    let req = match c.post_custom_send(ctx as Box<dyn mpicd::CustomPack>, dest as usize, tag) {
        Ok(r) => r,
        Err(e) => return e.code(),
    };
    *request = register_request(RequestEntry {
        request: req,
        send_keepalive: None,
        recv_keepalive: None,
    });
    MPI_SUCCESS
}

/// Nonblocking receive; complete with [`MPI_Wait`].
///
/// # Safety
/// `buf` must stay valid and untouched until the request completes.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Irecv(
    buf: *mut c_void,
    count: MPI_Count,
    datatype: MPI_Datatype,
    source: c_int,
    tag: c_int,
    comm: MPI_Comm,
    request: *mut MPI_Request,
) -> c_int {
    if comm != MPI_COMM_WORLD || count < 0 || request.is_null() {
        return MPI_ERR_ARG;
    }
    let _sp = mpicd_obs::span!("MPI_Irecv", "capi");
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    if let Some(sz) = predefined_size(datatype) {
        let req = match c.endpoint().post_recv(
            RecvDesc::Contig(IovEntryMut {
                ptr: buf as *mut u8,
                len: count as usize * sz,
            }),
            source,
            tag,
        ) {
            Ok(r) => r,
            Err(_) => return MPI_ERR_RANK,
        };
        *request = register_request(RequestEntry {
            request: req,
            send_keepalive: None,
            recv_keepalive: None,
        });
        return MPI_SUCCESS;
    }
    let cb = match lookup_type(datatype) {
        Ok(TypeEntry::Custom(cb)) => cb,
        Ok(TypeEntry::Committed(ty)) => {
            let req = match c.post_typed_recv(buf as *mut u8, count as usize, &ty, source, tag) {
                Ok(r) => r,
                Err(e) => return e.code(),
            };
            *request = register_request(RequestEntry {
                request: req,
                send_keepalive: None,
                recv_keepalive: None,
            });
            return MPI_SUCCESS;
        }
        Ok(TypeEntry::Derived(_)) => return MPI_ERR_TYPE,
        Err(code) => return code,
    };
    let mut ctx = match CCustomUnpack::new(cb, buf, count) {
        Ok(ctx) => Box::new(ctx),
        Err(e) => return e.code(),
    };
    let req = match c.post_custom_recv(&mut *ctx, source, tag) {
        Ok(r) => r,
        Err(e) => return e.code(),
    };
    *request = register_request(RequestEntry {
        request: req,
        send_keepalive: None,
        recv_keepalive: Some(ctx),
    });
    MPI_SUCCESS
}

/// Wait for one request; frees custom state objects at completion.
///
/// # Safety
/// `request` must point to a live handle variable.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Wait(request: *mut MPI_Request, status: *mut MPI_Status) -> c_int {
    if request.is_null() {
        return MPI_ERR_ARG;
    }
    let _sp = mpicd_obs::span!("MPI_Wait", "capi");
    let handle = *request;
    if handle == MPI_REQUEST_NULL {
        return MPI_SUCCESS;
    }
    let entry = match take_request(handle) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let outcome = entry.request.wait();
    // Dropping the keepalive boxes runs freefn on any custom state.
    drop(entry.send_keepalive);
    drop(entry.recv_keepalive);
    *request = MPI_REQUEST_NULL;
    match outcome {
        Ok(env) => {
            write_status(status, env.into());
            MPI_SUCCESS
        }
        Err(mpicd::fabric::FabricError::Truncated { .. }) => MPI_ERR_TRUNCATE,
        Err(mpicd::fabric::FabricError::PackFailed(c))
        | Err(mpicd::fabric::FabricError::UnpackFailed(c)) => c,
        Err(_) => MPI_ERR_INTERN,
    }
}

/// Wait for an array of requests.
///
/// # Safety
/// `requests` must point to `count` live handle variables; `statuses` must
/// be null or point to `count` status slots.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Waitall(
    count: c_int,
    requests: *mut MPI_Request,
    statuses: *mut MPI_Status,
) -> c_int {
    if count < 0 || requests.is_null() {
        return MPI_ERR_ARG;
    }
    let mut rc = MPI_SUCCESS;
    for i in 0..count as usize {
        let st = if statuses.is_null() {
            MPI_STATUS_IGNORE
        } else {
            statuses.add(i)
        };
        let r = MPI_Wait(requests.add(i), st);
        if r != MPI_SUCCESS && rc == MPI_SUCCESS {
            rc = r;
        }
    }
    rc
}

/// Blocking probe (simplified `MPI_Probe`): fills `status` with the
/// envelope of the next matching message without receiving it.
///
/// # Safety
/// `status` must be a valid pointer.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Probe_sim(
    source: c_int,
    tag: c_int,
    comm: MPI_Comm,
    status: *mut MPI_Status,
) -> c_int {
    if comm != MPI_COMM_WORLD || status.is_null() {
        return MPI_ERR_ARG;
    }
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    let st = c.probe(source, tag);
    write_status(status, st);
    MPI_SUCCESS
}

/// Nonblocking probe (`MPI_Iprobe`): sets `flag` and fills `status` when a
/// matching message is pending.
///
/// # Safety
/// `flag` and `status` must be valid pointers (`status` may be IGNORE).
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Iprobe(
    source: c_int,
    tag: c_int,
    comm: MPI_Comm,
    flag: *mut c_int,
    status: *mut MPI_Status,
) -> c_int {
    if comm != MPI_COMM_WORLD || flag.is_null() {
        return MPI_ERR_ARG;
    }
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    match c.iprobe(source, tag) {
        Some(st) => {
            *flag = 1;
            write_status(status, st);
        }
        None => *flag = 0,
    }
    MPI_SUCCESS
}

/// Blocking matched probe (`MPI_Mprobe`): claims the message atomically and
/// returns a message handle for [`MPI_Mrecv_sim`]. Message handles reuse
/// the request table.
///
/// # Safety
/// `message` and `status` must be valid pointers.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Mprobe_sim(
    source: c_int,
    tag: c_int,
    comm: MPI_Comm,
    message: *mut MPI_Request,
    status: *mut MPI_Status,
) -> c_int {
    if comm != MPI_COMM_WORLD || message.is_null() {
        return MPI_ERR_ARG;
    }
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    let (st, msg) = c.mprobe(source, tag);
    write_status(status, st);
    *message = crate::handles::register_message(msg);
    MPI_SUCCESS
}

/// Receive a message claimed by [`MPI_Mprobe_sim`] into a byte buffer
/// (`MPI_Mrecv` with `MPI_BYTE`).
///
/// # Safety
/// `buf` must be valid for `count` bytes; `message` must hold a handle from
/// `MPI_Mprobe_sim`.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Mrecv_sim(
    buf: *mut c_void,
    count: MPI_Count,
    message: *mut MPI_Request,
    status: *mut MPI_Status,
) -> c_int {
    if buf.is_null() || message.is_null() || count < 0 {
        return MPI_ERR_ARG;
    }
    let c = match current_comm() {
        Ok(c) => c,
        Err(code) => return code,
    };
    let msg = match crate::handles::take_message(*message) {
        Ok(m) => m,
        Err(code) => return code,
    };
    *message = MPI_REQUEST_NULL;
    let slice = std::slice::from_raw_parts_mut(buf as *mut u8, count as usize);
    match c.mrecv(slice, msg) {
        Ok(st) => {
            write_status(status, st);
            MPI_SUCCESS
        }
        Err(e) => e.code(),
    }
}
