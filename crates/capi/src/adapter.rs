//! Bridges between C callback bundles and the Rust custom-serialization
//! traits.
//!
//! Each adapter owns the per-operation state object: `statefn` runs at
//! construction, `freefn` at drop — the exact lifecycle the paper describes
//! ("The state object is freed on completion of the point-to-point
//! operation using the freefn callback").

use crate::ctypes::*;
use mpicd::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use mpicd::{Error, Result};
use std::os::raw::{c_int, c_void};

fn check(code: c_int) -> Result<()> {
    if code == MPI_SUCCESS {
        Ok(())
    } else {
        Err(Error::Serialization(code))
    }
}

/// Send-side adapter: C callbacks → [`CustomPack`].
pub struct CCustomPack {
    cb: CustomCallbacks,
    buf: *const c_void,
    count: MPI_Count,
    state: *mut c_void,
}

// SAFETY: MPI's own threading contract — the application's callbacks and
// context must tolerate being called from the progress thread.
unsafe impl Send for CCustomPack {}

impl CCustomPack {
    /// Run `statefn` and capture the state object.
    ///
    /// # Safety
    /// `buf` must be a valid buffer of `count` elements per the callbacks'
    /// expectations, alive for the adapter's lifetime.
    pub unsafe fn new(cb: CustomCallbacks, buf: *const c_void, count: MPI_Count) -> Result<Self> {
        let mut state: *mut c_void = std::ptr::null_mut();
        check((cb.statefn)(cb.context, buf, count, &mut state))?;
        Ok(Self {
            cb,
            buf,
            count,
            state,
        })
    }
}

impl CustomPack for CCustomPack {
    fn packed_size(&self) -> Result<usize> {
        let mut size: MPI_Count = 0;
        // SAFETY: state/buf validity guaranteed by `new`'s contract.
        check(unsafe { (self.cb.queryfn)(self.state, self.buf, self.count, &mut size) })?;
        Ok(size as usize)
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        let Some(packfn) = self.cb.packfn else {
            return Err(Error::Unsupported("datatype registered no pack function"));
        };
        let mut used: MPI_Count = 0;
        // SAFETY: dst is a live, exclusive slice; other pointers per `new`.
        check(unsafe {
            packfn(
                self.state,
                self.buf,
                self.count,
                offset as MPI_Count,
                dst.as_mut_ptr().cast(),
                dst.len() as MPI_Count,
                &mut used,
            )
        })?;
        Ok(used as usize)
    }

    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        let (Some(region_countfn), Some(regionfn)) = (self.cb.region_countfn, self.cb.regionfn)
        else {
            return Ok(Vec::new());
        };
        let mut n: MPI_Count = 0;
        // SAFETY: per `new`'s contract.
        check(unsafe { region_countfn(self.state, self.buf as *mut c_void, self.count, &mut n) })?;
        let n = n as usize;
        let mut bases = vec![std::ptr::null_mut::<c_void>(); n];
        let mut lens = vec![0 as MPI_Count; n];
        let mut types = vec![MPI_BYTE; n];
        // SAFETY: output arrays sized to `n` as the C contract requires.
        check(unsafe {
            regionfn(
                self.state,
                self.buf as *mut c_void,
                self.count,
                n as MPI_Count,
                bases.as_mut_ptr(),
                lens.as_mut_ptr(),
                types.as_mut_ptr(),
            )
        })?;
        if types.iter().any(|t| *t != MPI_BYTE) {
            return Err(Error::Unsupported(
                "only MPI_BYTE regions are supported by this prototype",
            ));
        }
        Ok(bases
            .into_iter()
            .zip(lens)
            .map(|(b, l)| SendRegion {
                ptr: b as *const u8,
                len: l as usize,
            })
            .collect())
    }

    fn inorder(&self) -> bool {
        self.cb.inorder
    }
}

impl Drop for CCustomPack {
    fn drop(&mut self) {
        if let Some(freefn) = self.cb.freefn {
            // SAFETY: state created by `statefn`, freed exactly once.
            unsafe {
                let _ = freefn(self.state);
            }
        }
    }
}

/// Receive-side adapter: C callbacks → [`CustomUnpack`].
pub struct CCustomUnpack {
    cb: CustomCallbacks,
    buf: *mut c_void,
    count: MPI_Count,
    state: *mut c_void,
}

// SAFETY: see `CCustomPack`.
unsafe impl Send for CCustomUnpack {}

impl CCustomUnpack {
    /// Run `statefn` and capture the state object.
    ///
    /// # Safety
    /// `buf` must be a valid, exclusively-held buffer of `count` elements,
    /// alive for the adapter's lifetime.
    pub unsafe fn new(cb: CustomCallbacks, buf: *mut c_void, count: MPI_Count) -> Result<Self> {
        let mut state: *mut c_void = std::ptr::null_mut();
        check((cb.statefn)(cb.context, buf, count, &mut state))?;
        Ok(Self {
            cb,
            buf,
            count,
            state,
        })
    }
}

impl CustomUnpack for CCustomUnpack {
    fn packed_size(&self) -> Result<usize> {
        let mut size: MPI_Count = 0;
        // SAFETY: per `new`'s contract.
        check(unsafe { (self.cb.queryfn)(self.state, self.buf, self.count, &mut size) })?;
        Ok(size as usize)
    }

    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        let Some(unpackfn) = self.cb.unpackfn else {
            return Err(Error::Unsupported("datatype registered no unpack function"));
        };
        // SAFETY: src is a live slice; other pointers per `new`.
        check(unsafe {
            unpackfn(
                self.state,
                self.buf,
                self.count,
                offset as MPI_Count,
                src.as_ptr().cast(),
                src.len() as MPI_Count,
            )
        })
    }

    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        let (Some(region_countfn), Some(regionfn)) = (self.cb.region_countfn, self.cb.regionfn)
        else {
            return Ok(Vec::new());
        };
        let mut n: MPI_Count = 0;
        // SAFETY: per `new`'s contract.
        check(unsafe { region_countfn(self.state, self.buf, self.count, &mut n) })?;
        let n = n as usize;
        let mut bases = vec![std::ptr::null_mut::<c_void>(); n];
        let mut lens = vec![0 as MPI_Count; n];
        let mut types = vec![MPI_BYTE; n];
        // SAFETY: output arrays sized to `n`.
        check(unsafe {
            regionfn(
                self.state,
                self.buf,
                self.count,
                n as MPI_Count,
                bases.as_mut_ptr(),
                lens.as_mut_ptr(),
                types.as_mut_ptr(),
            )
        })?;
        if types.iter().any(|t| *t != MPI_BYTE) {
            return Err(Error::Unsupported(
                "only MPI_BYTE regions are supported by this prototype",
            ));
        }
        Ok(bases
            .into_iter()
            .zip(lens)
            .map(|(b, l)| RecvRegion {
                ptr: b as *mut u8,
                len: l as usize,
            })
            .collect())
    }
}

impl Drop for CCustomUnpack {
    fn drop(&mut self) {
        if let Some(freefn) = self.cb.freefn {
            // SAFETY: state created by `statefn`, freed exactly once.
            unsafe {
                let _ = freefn(self.state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static STATE_ALLOCS: AtomicUsize = AtomicUsize::new(0);
    static STATE_FREES: AtomicUsize = AtomicUsize::new(0);

    unsafe extern "C" fn test_statefn(
        _context: *mut c_void,
        _src: *const c_void,
        _count: MPI_Count,
        state: *mut *mut c_void,
    ) -> c_int {
        STATE_ALLOCS.fetch_add(1, Ordering::SeqCst);
        *state = Box::into_raw(Box::new(0u64)) as *mut c_void;
        MPI_SUCCESS
    }

    unsafe extern "C" fn test_freefn(state: *mut c_void) -> c_int {
        STATE_FREES.fetch_add(1, Ordering::SeqCst);
        drop(Box::from_raw(state as *mut u64));
        MPI_SUCCESS
    }

    unsafe extern "C" fn test_queryfn(
        _state: *mut c_void,
        _buf: *const c_void,
        count: MPI_Count,
        packed_size: *mut MPI_Count,
    ) -> c_int {
        *packed_size = count * 4;
        MPI_SUCCESS
    }

    unsafe extern "C" fn test_packfn(
        _state: *mut c_void,
        buf: *const c_void,
        count: MPI_Count,
        offset: MPI_Count,
        dst: *mut c_void,
        dst_size: MPI_Count,
        used: *mut MPI_Count,
    ) -> c_int {
        let total = count * 4;
        let n = (total - offset).min(dst_size);
        std::ptr::copy_nonoverlapping(
            (buf as *const u8).offset(offset as isize),
            dst as *mut u8,
            n as usize,
        );
        *used = n;
        MPI_SUCCESS
    }

    fn callbacks() -> CustomCallbacks {
        CustomCallbacks {
            statefn: test_statefn,
            freefn: Some(test_freefn),
            queryfn: test_queryfn,
            packfn: Some(test_packfn),
            unpackfn: None,
            region_countfn: None,
            regionfn: None,
            context: std::ptr::null_mut(),
            inorder: true,
        }
    }

    #[test]
    fn state_lifecycle_and_packing() {
        let allocs0 = STATE_ALLOCS.load(Ordering::SeqCst);
        let frees0 = STATE_FREES.load(Ordering::SeqCst);
        let data = [1i32, 2, 3];
        {
            let mut a = unsafe { CCustomPack::new(callbacks(), data.as_ptr().cast(), 3).unwrap() };
            assert_eq!(a.packed_size().unwrap(), 12);
            let mut out = [0u8; 12];
            assert_eq!(a.pack(0, &mut out).unwrap(), 12);
            assert_eq!(&out[..4], &1i32.to_ne_bytes());
            assert!(a.inorder());
            assert!(a.regions().unwrap().is_empty());
        }
        assert_eq!(STATE_ALLOCS.load(Ordering::SeqCst), allocs0 + 1);
        assert_eq!(
            STATE_FREES.load(Ordering::SeqCst),
            frees0 + 1,
            "freefn ran at drop"
        );
    }

    #[test]
    fn error_codes_propagate() {
        unsafe extern "C" fn bad_queryfn(
            _state: *mut c_void,
            _buf: *const c_void,
            _count: MPI_Count,
            _packed_size: *mut MPI_Count,
        ) -> c_int {
            33
        }
        let cb = CustomCallbacks {
            queryfn: bad_queryfn,
            ..callbacks()
        };
        let data = [0u8; 4];
        let a = unsafe { CCustomPack::new(cb, data.as_ptr().cast(), 1).unwrap() };
        assert_eq!(a.packed_size(), Err(Error::Serialization(33)));
    }
}
