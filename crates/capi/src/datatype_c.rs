//! `MPI_Type_create_custom` — Listing 2, verbatim signature.

use crate::ctypes::*;
use crate::handles::{register_type, resolve_element_type, TypeEntry, GLOBAL};
use mpicd_datatype::Datatype;
use std::os::raw::{c_int, c_void};
use std::sync::Arc;

/// Create a custom datatype from application callbacks (Listing 2).
///
/// `statefn` and `queryfn` are required; the rest may be null when the type
/// does not need them (e.g. a regions-only type may omit `packfn`).
/// `inorder` nonzero requests in-order fragment delivery to `unpackfn`.
///
/// # Safety
/// The callbacks and `context` must remain valid until the type is freed,
/// and must follow the documented callback contracts when invoked.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Type_create_custom(
    statefn: Option<MPI_Type_custom_state_function>,
    freefn: Option<MPI_Type_custom_state_free_function>,
    queryfn: Option<MPI_Type_custom_query_function>,
    packfn: Option<MPI_Type_custom_pack_function>,
    unpackfn: Option<MPI_Type_custom_unpack_function>,
    region_countfn: Option<MPI_Type_custom_region_count_function>,
    regionfn: Option<MPI_Type_custom_region_function>,
    context: *mut c_void,
    inorder: c_int,
    newtype: *mut MPI_Datatype,
) -> c_int {
    let (Some(statefn), Some(queryfn)) = (statefn, queryfn) else {
        return MPI_ERR_ARG;
    };
    if newtype.is_null() {
        return MPI_ERR_ARG;
    }
    // Regions come as a count/fill pair; allowing one without the other is
    // an application bug worth failing early on.
    if region_countfn.is_some() != regionfn.is_some() {
        return MPI_ERR_ARG;
    }
    let cb = CustomCallbacks {
        statefn,
        freefn,
        queryfn,
        packfn,
        unpackfn,
        region_countfn,
        regionfn,
        context,
        inorder: inorder != 0,
    };
    *newtype = register_type(TypeEntry::Custom(cb));
    MPI_SUCCESS
}

/// `MPI_Type_contiguous`: `count` consecutive elements of `oldtype`.
///
/// # Safety
/// `newtype` must be a valid pointer.
pub unsafe extern "C" fn MPI_Type_contiguous(
    count: MPI_Count,
    oldtype: MPI_Datatype,
    newtype: *mut MPI_Datatype,
) -> c_int {
    if newtype.is_null() || count < 0 {
        return MPI_ERR_ARG;
    }
    let child = match resolve_element_type(oldtype) {
        Ok(t) => t,
        Err(code) => return code,
    };
    *newtype = register_type(TypeEntry::Derived(Datatype::contiguous(
        count as usize,
        child,
    )));
    MPI_SUCCESS
}

/// `MPI_Type_vector`: strided blocks (stride in elements of `oldtype`).
///
/// # Safety
/// `newtype` must be a valid pointer.
pub unsafe extern "C" fn MPI_Type_vector(
    count: MPI_Count,
    blocklength: MPI_Count,
    stride: MPI_Count,
    oldtype: MPI_Datatype,
    newtype: *mut MPI_Datatype,
) -> c_int {
    if newtype.is_null() || count < 0 || blocklength < 0 {
        return MPI_ERR_ARG;
    }
    let child = match resolve_element_type(oldtype) {
        Ok(t) => t,
        Err(code) => return code,
    };
    *newtype = register_type(TypeEntry::Derived(Datatype::vector(
        count as usize,
        blocklength as usize,
        stride as isize,
        child,
    )));
    MPI_SUCCESS
}

/// `MPI_Type_create_struct`: heterogeneous fields at byte displacements.
///
/// # Safety
/// `blocklengths`/`displacements`/`types` must point to `count` entries;
/// `newtype` must be valid.
pub unsafe extern "C" fn MPI_Type_create_struct(
    count: MPI_Count,
    blocklengths: *const MPI_Count,
    displacements: *const MPI_Count,
    types: *const MPI_Datatype,
    newtype: *mut MPI_Datatype,
) -> c_int {
    if newtype.is_null()
        || count < 0
        || blocklengths.is_null()
        || displacements.is_null()
        || types.is_null()
    {
        return MPI_ERR_ARG;
    }
    let n = count as usize;
    let mut fields = Vec::with_capacity(n);
    for i in 0..n {
        let bl = *blocklengths.add(i);
        let d = *displacements.add(i);
        if bl < 0 {
            return MPI_ERR_ARG;
        }
        let ft = match resolve_element_type(*types.add(i)) {
            Ok(t) => t,
            Err(code) => return code,
        };
        fields.push((bl as usize, d as isize, ft));
    }
    *newtype = register_type(TypeEntry::Derived(Datatype::structure(fields)));
    MPI_SUCCESS
}

/// `MPI_Type_commit`: flatten/optimize a derived type for communication.
/// Uses the convertor-style commit (the Open MPI model this reproduction
/// benchmarks against).
///
/// # Safety
/// `datatype` must point to a live handle variable.
pub unsafe extern "C" fn MPI_Type_commit(datatype: *mut MPI_Datatype) -> c_int {
    if datatype.is_null() {
        return MPI_ERR_ARG;
    }
    let handle = *datatype;
    let mut g = GLOBAL.lock();
    let entry = match g.datatypes.get(&handle) {
        Some(e) => e.clone(),
        None => return MPI_ERR_TYPE,
    };
    match entry {
        TypeEntry::Derived(t) => match t.commit_convertor() {
            Ok(c) => {
                g.datatypes
                    .insert(handle, TypeEntry::Committed(Arc::new(c)));
                MPI_SUCCESS
            }
            Err(_) => MPI_ERR_TYPE,
        },
        // Committing a custom or already-committed type is a no-op.
        TypeEntry::Custom(_) | TypeEntry::Committed(_) => MPI_SUCCESS,
    }
}

/// `MPI_Get_count`: elements received, from a status and a datatype.
/// Returns `MPI_ERR_TYPE` when the byte count is not a whole number of
/// elements (MPI would set `MPI_UNDEFINED`).
///
/// # Safety
/// `status` and `count` must be valid pointers.
pub unsafe extern "C" fn MPI_Get_count(
    status: *const MPI_Status,
    datatype: MPI_Datatype,
    count: *mut MPI_Count,
) -> c_int {
    if status.is_null() || count.is_null() {
        return MPI_ERR_ARG;
    }
    let bytes = (*status).count as usize;
    let elem = match datatype {
        MPI_BYTE => 1usize,
        MPI_INT | MPI_FLOAT => 4,
        MPI_DOUBLE | MPI_INT64_T => 8,
        _ => match crate::handles::lookup_type(datatype) {
            Ok(TypeEntry::Committed(c)) => c.size(),
            Ok(TypeEntry::Derived(t)) => t.size(),
            _ => return MPI_ERR_TYPE,
        },
    };
    if elem == 0 || !bytes.is_multiple_of(elem) {
        return MPI_ERR_TYPE;
    }
    *count = (bytes / elem) as MPI_Count;
    MPI_SUCCESS
}

/// Release a custom datatype handle.
///
/// # Safety
/// `datatype` must point to a live handle variable.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPI_Type_free(datatype: *mut MPI_Datatype) -> c_int {
    if datatype.is_null() {
        return MPI_ERR_ARG;
    }
    let handle = *datatype;
    let mut g = GLOBAL.lock();
    if g.datatypes.remove(&handle).is_none() {
        return MPI_ERR_TYPE;
    }
    *datatype = MPI_BYTE; // "null-ish": reset to a predefined handle
    MPI_SUCCESS
}

/// `MPIX_Type_signature` (extension): the 64-bit structural signature of a
/// datatype — the token the fabric compares under `MPICD_TYPECHECK`.
///
/// Works on predefined handles, derived (uncommitted) types, and committed
/// types. Custom-callback types have no declared type map and report `0`
/// ("unchecked"), matching how their sends travel on the wire.
///
/// # Safety
/// `signature` must be a valid pointer.
#[allow(non_snake_case)]
pub unsafe extern "C" fn MPIX_Type_signature(datatype: MPI_Datatype, signature: *mut u64) -> c_int {
    if signature.is_null() {
        return MPI_ERR_ARG;
    }
    if let Ok(t) = resolve_element_type(datatype) {
        *signature = mpicd_datatype::signature64(&t);
        return MPI_SUCCESS;
    }
    match crate::handles::lookup_type(datatype) {
        Ok(TypeEntry::Committed(c)) => {
            *signature = c.signature64();
            MPI_SUCCESS
        }
        Ok(TypeEntry::Custom(_)) => {
            *signature = 0;
            MPI_SUCCESS
        }
        Ok(TypeEntry::Derived(_)) => unreachable!("resolved above"),
        Err(e) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    unsafe extern "C" fn sf(
        _c: *mut c_void,
        _s: *const c_void,
        _n: MPI_Count,
        state: *mut *mut c_void,
    ) -> c_int {
        *state = std::ptr::null_mut();
        MPI_SUCCESS
    }

    unsafe extern "C" fn qf(
        _st: *mut c_void,
        _b: *const c_void,
        n: MPI_Count,
        out: *mut MPI_Count,
    ) -> c_int {
        *out = n;
        MPI_SUCCESS
    }

    #[test]
    fn create_and_free() {
        let mut ty: MPI_Datatype = 0;
        let rc = unsafe {
            MPI_Type_create_custom(
                Some(sf),
                None,
                Some(qf),
                None,
                None,
                None,
                None,
                std::ptr::null_mut(),
                1,
                &mut ty,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        assert!(ty >= 100);
        let mut ty2 = ty;
        assert_eq!(unsafe { MPI_Type_free(&mut ty2) }, MPI_SUCCESS);
        assert_eq!(
            unsafe { MPI_Type_free(&mut ty2) },
            MPI_ERR_TYPE,
            "double free"
        );
    }

    #[test]
    fn missing_required_callbacks_rejected() {
        let mut ty: MPI_Datatype = 0;
        let rc = unsafe {
            MPI_Type_create_custom(
                None,
                None,
                Some(qf),
                None,
                None,
                None,
                None,
                std::ptr::null_mut(),
                0,
                &mut ty,
            )
        };
        assert_eq!(rc, MPI_ERR_ARG);
    }

    #[test]
    fn mismatched_region_callbacks_rejected() {
        unsafe extern "C" fn rcf(
            _st: *mut c_void,
            _b: *mut c_void,
            _n: MPI_Count,
            out: *mut MPI_Count,
        ) -> c_int {
            *out = 0;
            MPI_SUCCESS
        }
        let mut ty: MPI_Datatype = 0;
        let rc = unsafe {
            MPI_Type_create_custom(
                Some(sf),
                None,
                Some(qf),
                None,
                None,
                Some(rcf),
                None, // count without fill
                std::ptr::null_mut(),
                0,
                &mut ty,
            )
        };
        assert_eq!(rc, MPI_ERR_ARG);
    }

    /// Build `{bl × type @ displ}` struct handles for signature tests.
    unsafe fn struct_handle(fields: &[(MPI_Count, MPI_Count, MPI_Datatype)]) -> MPI_Datatype {
        let bl: Vec<MPI_Count> = fields.iter().map(|f| f.0).collect();
        let d: Vec<MPI_Count> = fields.iter().map(|f| f.1).collect();
        let t: Vec<MPI_Datatype> = fields.iter().map(|f| f.2).collect();
        let mut ty: MPI_Datatype = 0;
        assert_eq!(
            MPI_Type_create_struct(
                fields.len() as MPI_Count,
                bl.as_ptr(),
                d.as_ptr(),
                t.as_ptr(),
                &mut ty,
            ),
            MPI_SUCCESS
        );
        ty
    }

    #[test]
    fn type_signature_survives_commit_and_separates_layouts() {
        unsafe {
            // The acceptance-criteria pair: {f64,f64,i32} vs {f64,i32,f64}.
            let mut a = struct_handle(&[(2, 0, MPI_DOUBLE), (1, 16, MPI_INT)]);
            let b = struct_handle(&[(1, 0, MPI_DOUBLE), (1, 8, MPI_INT), (1, 16, MPI_DOUBLE)]);
            let mut sig_a = 0u64;
            let mut sig_b = 0u64;
            assert_eq!(MPIX_Type_signature(a, &mut sig_a), MPI_SUCCESS);
            assert_eq!(MPIX_Type_signature(b, &mut sig_b), MPI_SUCCESS);
            assert_ne!(sig_a, 0, "declared type maps are always checked");
            assert_ne!(sig_a, sig_b, "reordered fields get distinct tokens");
            // Committing must not change the wire token.
            assert_eq!(MPI_Type_commit(&mut a), MPI_SUCCESS);
            let mut sig_committed = 0u64;
            assert_eq!(MPIX_Type_signature(a, &mut sig_committed), MPI_SUCCESS);
            assert_eq!(sig_committed, sig_a);
            // Predefined handles work too.
            let mut sig_int = 0u64;
            assert_eq!(MPIX_Type_signature(MPI_INT, &mut sig_int), MPI_SUCCESS);
            assert_ne!(sig_int, 0);
        }
    }

    #[test]
    fn custom_types_report_unchecked_signature() {
        let mut ty: MPI_Datatype = 0;
        unsafe {
            assert_eq!(
                MPI_Type_create_custom(
                    Some(sf),
                    None,
                    Some(qf),
                    None,
                    None,
                    None,
                    None,
                    std::ptr::null_mut(),
                    1,
                    &mut ty,
                ),
                MPI_SUCCESS
            );
            let mut sig = 1u64;
            assert_eq!(MPIX_Type_signature(ty, &mut sig), MPI_SUCCESS);
            assert_eq!(sig, 0, "no declared type map, so unchecked on the wire");
            assert_eq!(MPIX_Type_signature(ty, std::ptr::null_mut()), MPI_ERR_ARG);
        }
    }
}
