#![allow(non_camel_case_types, non_snake_case)]
#![warn(missing_docs)]

//! # mpicd-capi — the C-ABI surface of the custom datatype proposal
//!
//! This crate reproduces the paper's `mpicd-capi` layer: the exact
//! `MPI_Type_create_custom` entry point of Listing 2 together with the
//! callback typedefs of Listings 3–5, and enough of the MPI point-to-point
//! surface (`MPI_Send`, `MPI_Recv`, `MPI_Isend`, `MPI_Irecv`, `MPI_Wait`,
//! `MPI_Waitall`, `MPI_Probe`, `MPI_Comm_rank`, `MPI_Comm_size`) to run the
//! paper's benchmarks from C-shaped code.
//!
//! Everything crosses the boundary the way a C program would see it:
//! `extern "C"` function pointers, `void *` contexts and state objects,
//! `MPI_Count` byte counts, and integer error codes (`MPI_SUCCESS == 0`).
//! The tests in this crate call through those function pointers exactly as
//! compiled C would.
//!
//! ## Process model
//!
//! Real MPI ranks are processes; this in-process reproduction runs each
//! rank on a thread. [`mpi_init_sim`] creates the world once,
//! [`mpi_attach_rank`] binds the calling thread to a rank (thread-local),
//! and the `MPI_*` calls then behave exactly as they would per-process.

pub mod adapter;
pub mod ctypes;
pub mod datatype_c;
pub mod handles;
pub mod pt2pt;

pub use ctypes::*;
pub use datatype_c::{
    MPIX_Type_signature, MPI_Get_count, MPI_Type_commit, MPI_Type_contiguous,
    MPI_Type_create_custom, MPI_Type_create_struct, MPI_Type_free, MPI_Type_vector,
};
pub use handles::{mpi_attach_rank, mpi_finalize_sim, mpi_init_sim};
pub use pt2pt::{
    MPI_Comm_rank, MPI_Comm_size, MPI_Iprobe, MPI_Irecv, MPI_Isend, MPI_Mprobe_sim, MPI_Mrecv_sim,
    MPI_Probe_sim, MPI_Recv, MPI_Send, MPI_Wait, MPI_Waitall,
};
