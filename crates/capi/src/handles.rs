//! Global handle tables and the simulated process model.
//!
//! Real MPI gives each rank its own process and global state; this
//! in-process reproduction runs ranks on threads. The world is created once
//! with [`mpi_init_sim`], each rank thread binds itself with
//! [`mpi_attach_rank`], and handle tables (datatypes, requests) are global
//! and mutex-protected — the same granularity as an
//! `MPI_THREAD_MULTIPLE`-safe implementation.

use crate::adapter::{CCustomPack, CCustomUnpack};
use crate::ctypes::*;
use mpicd::{Communicator, World};
use mpicd_datatype::{Committed, Datatype};
use std::cell::Cell;
use std::collections::HashMap;
use std::os::raw::c_int;
use std::sync::Arc;

/// A pending nonblocking operation: the fabric request plus whatever must
/// stay alive until the wait (custom contexts own their C state objects).
pub(crate) struct RequestEntry {
    pub request: mpicd::fabric::Request,
    pub send_keepalive: Option<Box<CCustomPack>>,
    pub recv_keepalive: Option<Box<CCustomUnpack>>,
}

/// What a datatype handle refers to.
#[derive(Clone)]
pub(crate) enum TypeEntry {
    /// Created by `MPI_Type_create_custom` (the paper's proposal).
    Custom(CustomCallbacks),
    /// Built by the classic constructors, not yet committed.
    Derived(Datatype),
    /// Committed derived type, ready for communication.
    Committed(Arc<Committed>),
}

#[derive(Default)]
pub(crate) struct Global {
    pub world: Option<World>,
    pub comms: Vec<Communicator>,
    pub datatypes: HashMap<MPI_Datatype, TypeEntry>,
    pub requests: HashMap<MPI_Request, RequestEntry>,
    pub next_type: MPI_Datatype,
    pub next_request: MPI_Request,
}

pub(crate) static GLOBAL: once_lock::GlobalLock = once_lock::GlobalLock::new();

/// Lazy global: `Mutex<Global>` behind a `OnceLock` (HashMap construction
/// is not const).
pub(crate) mod once_lock {
    use super::Global;
    use mpicd_obs::sync::{Mutex, MutexGuard};
    use std::sync::OnceLock;

    pub(crate) struct GlobalLock(OnceLock<Mutex<Global>>);

    impl GlobalLock {
        pub(crate) const fn new() -> Self {
            Self(OnceLock::new())
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, Global> {
            self.0
                .get_or_init(|| {
                    Mutex::new(Global {
                        world: None,
                        comms: Vec::new(),
                        datatypes: std::collections::HashMap::new(),
                        requests: std::collections::HashMap::new(),
                        // Handles below 100 are reserved for predefined types.
                        next_type: 100,
                        next_request: 1,
                    })
                })
                .lock()
        }
    }
}

thread_local! {
    static THREAD_RANK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Create the world. Call once before any other MPI call.
///
/// Returns `MPI_SUCCESS`, or `MPI_ERR_ARG` for a zero-rank world /
/// double initialization.
#[allow(non_snake_case)]
pub fn mpi_init_sim(nranks: usize) -> c_int {
    if nranks == 0 {
        return MPI_ERR_ARG;
    }
    let mut g = GLOBAL.lock();
    if g.world.is_some() {
        return MPI_ERR_ARG;
    }
    let world = World::new(nranks);
    g.comms = world.comms();
    g.world = Some(world);
    MPI_SUCCESS
}

/// Bind the calling thread to `rank` (thread-local). Each rank thread calls
/// this once, the moral equivalent of being launched as that process.
pub fn mpi_attach_rank(rank: usize) -> c_int {
    let g = GLOBAL.lock();
    match &g.world {
        Some(w) if rank < w.size() => {
            THREAD_RANK.with(|r| r.set(Some(rank)));
            MPI_SUCCESS
        }
        _ => MPI_ERR_RANK,
    }
}

/// Tear the world down, failing outstanding requests.
pub fn mpi_finalize_sim() -> c_int {
    let mut g = GLOBAL.lock();
    g.requests.clear();
    g.datatypes.clear();
    g.comms.clear();
    g.world = None;
    THREAD_RANK.with(|r| r.set(None));
    MPI_SUCCESS
}

/// The calling thread's communicator, if initialized and attached.
pub(crate) fn current_comm() -> Result<Communicator, c_int> {
    let rank = THREAD_RANK.with(|r| r.get()).ok_or(MPI_ERR_RANK)?;
    let g = GLOBAL.lock();
    g.comms.get(rank).cloned().ok_or(MPI_ERR_RANK)
}

/// Look up a registered datatype entry.
pub(crate) fn lookup_type(handle: MPI_Datatype) -> Result<TypeEntry, c_int> {
    GLOBAL
        .lock()
        .datatypes
        .get(&handle)
        .cloned()
        .ok_or(MPI_ERR_TYPE)
}

/// Register a datatype entry, returning a fresh handle.
pub(crate) fn register_type(entry: TypeEntry) -> MPI_Datatype {
    let mut g = GLOBAL.lock();
    let h = g.next_type;
    g.next_type += 1;
    g.datatypes.insert(h, entry);
    h
}

/// Resolve a handle that must be a predefined or derived (non-custom)
/// element type, as a `Datatype` tree. Predefined handles resolve to their
/// primitives.
pub(crate) fn resolve_element_type(handle: MPI_Datatype) -> Result<Datatype, c_int> {
    use mpicd_datatype::Primitive;
    match handle {
        MPI_BYTE => return Ok(Datatype::Predefined(Primitive::Byte)),
        MPI_INT => return Ok(Datatype::Predefined(Primitive::Int32)),
        MPI_DOUBLE => return Ok(Datatype::Predefined(Primitive::Double)),
        MPI_FLOAT => return Ok(Datatype::Predefined(Primitive::Float)),
        MPI_INT64_T => return Ok(Datatype::Predefined(Primitive::Int64)),
        _ => {}
    }
    match lookup_type(handle)? {
        TypeEntry::Derived(t) => Ok(t),
        TypeEntry::Committed(_) => Err(MPI_ERR_TYPE), // rebuild from tree not kept
        TypeEntry::Custom(_) => Err(MPI_ERR_TYPE),
    }
}

/// Register a request entry, returning its handle.
pub(crate) fn register_request(entry: RequestEntry) -> MPI_Request {
    let mut g = GLOBAL.lock();
    let h = g.next_request;
    g.next_request += 1;
    g.requests.insert(h, entry);
    h
}

/// Remove a request entry by handle.
pub(crate) fn take_request(handle: MPI_Request) -> Result<RequestEntry, c_int> {
    GLOBAL
        .lock()
        .requests
        .remove(&handle)
        .ok_or(MPI_ERR_REQUEST)
}

// ---- matched-message handles (MPI_Mprobe / MPI_Mrecv) -----------------------

use mpicd_obs::sync::Mutex as ObsMutex;

static MESSAGES: ObsMutex<Vec<Option<mpicd::MatchedMessage>>> = ObsMutex::new(Vec::new());

/// Store a matched message, returning its handle (disjoint from request
/// handles by construction: encoded as a negative number below -1).
pub(crate) fn register_message(msg: mpicd::MatchedMessage) -> MPI_Request {
    let mut table = MESSAGES.lock();
    let idx = table.len();
    table.push(Some(msg));
    -(idx as MPI_Request) - 2
}

/// Take a matched message back out of the table.
pub(crate) fn take_message(handle: MPI_Request) -> Result<mpicd::MatchedMessage, c_int> {
    if handle >= -1 {
        return Err(MPI_ERR_REQUEST);
    }
    let idx = (-handle - 2) as usize;
    MESSAGES
        .lock()
        .get_mut(idx)
        .and_then(Option::take)
        .ok_or(MPI_ERR_REQUEST)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: handle-table unit tests that need a live world live in the
    // crate-level integration tests (tests/capi.rs) because the world is a
    // process-wide singleton and Rust unit tests share one process.

    #[test]
    fn attach_fails_without_world_or_bad_rank() {
        // Before init (or after finalize in another test), attaching to an
        // absurd rank must fail.
        assert_eq!(mpi_attach_rank(usize::MAX), MPI_ERR_RANK);
    }

    #[test]
    fn request_table_roundtrip() {
        let req = mpicd::fabric::Request::ready(mpicd_fabric_envelope());
        let h = register_request(RequestEntry {
            request: req,
            send_keepalive: None,
            recv_keepalive: None,
        });
        let entry = take_request(h).unwrap();
        assert!(entry.request.is_done());
        assert_eq!(take_request(h).err(), Some(MPI_ERR_REQUEST));
    }

    fn mpicd_fabric_envelope() -> mpicd_fabric::matching::Envelope {
        mpicd_fabric::matching::Envelope {
            source: 0,
            tag: 0,
            bytes: 0,
        }
    }
}
