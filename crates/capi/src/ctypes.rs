//! C-visible types, constants and callback signatures (Listings 2–5).

use std::os::raw::{c_int, c_void};

/// `MPI_Count` — large counts, as in the MPI 4 embiggened interfaces.
pub type MPI_Count = i64;

/// Datatype handle (opaque integer, as real MPI implementations use).
pub type MPI_Datatype = c_int;

/// Request handle.
pub type MPI_Request = c_int;

/// Communicator handle.
pub type MPI_Comm = c_int;

/// Success return code.
pub const MPI_SUCCESS: c_int = 0;

/// Generic internal error.
pub const MPI_ERR_INTERN: c_int = 17;

/// Invalid argument error.
pub const MPI_ERR_ARG: c_int = 12;

/// Truncated receive.
pub const MPI_ERR_TRUNCATE: c_int = 15;

/// Invalid rank.
pub const MPI_ERR_RANK: c_int = 6;

/// Invalid datatype handle.
pub const MPI_ERR_TYPE: c_int = 3;

/// Invalid request handle.
pub const MPI_ERR_REQUEST: c_int = 19;

/// The world communicator handle.
pub const MPI_COMM_WORLD: MPI_Comm = 91;

/// Predefined byte datatype handle.
pub const MPI_BYTE: MPI_Datatype = 1;

/// Predefined 32-bit integer handle.
pub const MPI_INT: MPI_Datatype = 2;

/// Predefined double-precision handle.
pub const MPI_DOUBLE: MPI_Datatype = 3;

/// Predefined single-precision handle.
pub const MPI_FLOAT: MPI_Datatype = 4;

/// Predefined 64-bit integer handle.
pub const MPI_INT64_T: MPI_Datatype = 5;

/// Null request handle.
pub const MPI_REQUEST_NULL: MPI_Request = -1;

/// Wildcard source (matches the fabric's selector encoding).
pub const MPI_ANY_SOURCE: c_int = -1;

/// Wildcard tag.
pub const MPI_ANY_TAG: c_int = -2;

/// Completion status (subset of `MPI_Status`).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct MPI_Status {
    /// Source rank of the matched message.
    pub MPI_SOURCE: c_int,
    /// Tag of the matched message.
    pub MPI_TAG: c_int,
    /// Error code associated with the operation.
    pub MPI_ERROR: c_int,
    /// Received byte count (retrievable via `MPI_Get_count` in real MPI).
    pub count: MPI_Count,
}

/// Ignore-status sentinel.
pub const MPI_STATUS_IGNORE: *mut MPI_Status = std::ptr::null_mut();

// ---- Listing 3: state management ------------------------------------------

/// Create per-operation state for a buffer/count pair.
pub type MPI_Type_custom_state_function = unsafe extern "C" fn(
    context: *mut c_void,
    src: *const c_void,
    src_count: MPI_Count,
    state: *mut *mut c_void,
) -> c_int;

/// Release per-operation state.
pub type MPI_Type_custom_state_free_function = unsafe extern "C" fn(state: *mut c_void) -> c_int;

// ---- Listing 4: query / pack / unpack ---------------------------------------

/// Report the total packed size of a buffer.
pub type MPI_Type_custom_query_function = unsafe extern "C" fn(
    state: *mut c_void,
    buf: *const c_void,
    count: MPI_Count,
    packed_size: *mut MPI_Count,
) -> c_int;

/// Pack one fragment at a virtual offset; may partially fill.
pub type MPI_Type_custom_pack_function = unsafe extern "C" fn(
    state: *mut c_void,
    buf: *const c_void,
    count: MPI_Count,
    offset: MPI_Count,
    dst: *mut c_void,
    dst_size: MPI_Count,
    used: *mut MPI_Count,
) -> c_int;

/// Unpack one received fragment at a virtual offset.
pub type MPI_Type_custom_unpack_function = unsafe extern "C" fn(
    state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    offset: MPI_Count,
    src: *const c_void,
    src_size: MPI_Count,
) -> c_int;

// ---- Listing 5: memory regions ----------------------------------------------

/// Report how many memory regions the buffer exposes.
pub type MPI_Type_custom_region_count_function = unsafe extern "C" fn(
    state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    region_count: *mut MPI_Count,
) -> c_int;

/// Fill the per-region base/length/type arrays.
pub type MPI_Type_custom_region_function = unsafe extern "C" fn(
    state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    region_count: MPI_Count,
    reg_bases: *mut *mut c_void,
    reg_lens: *mut MPI_Count,
    reg_types: *mut MPI_Datatype,
) -> c_int;

/// The full callback bundle registered by `MPI_Type_create_custom`
/// (Listing 2's argument list, minus the out parameter).
#[derive(Clone, Copy)]
pub struct CustomCallbacks {
    /// Per-operation state constructor (required).
    pub statefn: MPI_Type_custom_state_function,
    /// State destructor, run at operation completion.
    pub freefn: Option<MPI_Type_custom_state_free_function>,
    /// Packed-size query (required).
    pub queryfn: MPI_Type_custom_query_function,
    /// Fragment packer; may be null for regions-only types.
    pub packfn: Option<MPI_Type_custom_pack_function>,
    /// Fragment unpacker; may be null for regions-only types.
    pub unpackfn: Option<MPI_Type_custom_unpack_function>,
    /// Region-count query; paired with `regionfn`.
    pub region_countfn: Option<MPI_Type_custom_region_count_function>,
    /// Region-array filler; paired with `region_countfn`.
    pub regionfn: Option<MPI_Type_custom_region_function>,
    /// Opaque application pointer passed to `statefn`.
    pub context: *mut c_void,
    /// Listing 2's in-order fragment delivery flag.
    pub inorder: bool,
}

// SAFETY: the context pointer's thread affinity is the application's
// responsibility, as in MPI itself.
unsafe impl Send for CustomCallbacks {}
unsafe impl Sync for CustomCallbacks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_is_repr_c_sized() {
        // 3 ints (+ padding) + one i64.
        assert_eq!(std::mem::size_of::<MPI_Status>(), 24);
    }

    #[test]
    fn constants_are_distinct() {
        assert_ne!(MPI_SUCCESS, MPI_ERR_INTERN);
        assert_ne!(MPI_ANY_SOURCE, MPI_ANY_TAG);
    }
}
