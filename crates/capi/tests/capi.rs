//! End-to-end exercise of the C API: what a C test program would compile
//! to. Two rank threads exchange a gapped struct type through
//! `MPI_Type_create_custom` + `MPI_Send`/`MPI_Recv`, including the region
//! path and nonblocking operations.
//!
//! All tests share one process-wide world (real MPI semantics), so this
//! file runs them from a single `#[test]` entry point in a fixed order.

#![allow(non_snake_case)]

use mpicd_capi::*;
use std::os::raw::{c_int, c_void};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The C-side application type: three ints, a gap, a double, and a
/// heap-allocated payload referenced by pointer (like a C `double *`).
#[repr(C)]
struct CElem {
    a: i32,
    b: i32,
    c: i32,
    d: f64,
    payload_len: usize, // elements in `payload`
    payload: *mut f64,
}

const SCALARS: usize = 20; // packed a,b,c,d

static STATE_LIVE: AtomicUsize = AtomicUsize::new(0);

unsafe extern "C" fn statefn(
    _context: *mut c_void,
    _src: *const c_void,
    _count: MPI_Count,
    state: *mut *mut c_void,
) -> c_int {
    STATE_LIVE.fetch_add(1, Ordering::SeqCst);
    *state = std::ptr::null_mut();
    MPI_SUCCESS
}

unsafe extern "C" fn freefn(_state: *mut c_void) -> c_int {
    STATE_LIVE.fetch_sub(1, Ordering::SeqCst);
    MPI_SUCCESS
}

unsafe extern "C" fn queryfn(
    _state: *mut c_void,
    _buf: *const c_void,
    count: MPI_Count,
    packed_size: *mut MPI_Count,
) -> c_int {
    *packed_size = count * SCALARS as MPI_Count;
    MPI_SUCCESS
}

unsafe extern "C" fn packfn(
    _state: *mut c_void,
    buf: *const c_void,
    count: MPI_Count,
    offset: MPI_Count,
    dst: *mut c_void,
    dst_size: MPI_Count,
    used: *mut MPI_Count,
) -> c_int {
    let elems = std::slice::from_raw_parts(buf as *const CElem, count as usize);
    let dst = std::slice::from_raw_parts_mut(dst as *mut u8, dst_size as usize);
    let mut at = offset as usize;
    let total = elems.len() * SCALARS;
    let mut done = 0usize;
    while at < total && done < dst.len() {
        let e = &elems[at / SCALARS];
        let mut rec = [0u8; SCALARS];
        rec[0..4].copy_from_slice(&e.a.to_ne_bytes());
        rec[4..8].copy_from_slice(&e.b.to_ne_bytes());
        rec[8..12].copy_from_slice(&e.c.to_ne_bytes());
        rec[12..20].copy_from_slice(&e.d.to_ne_bytes());
        let within = at % SCALARS;
        let n = (SCALARS - within).min(dst.len() - done);
        dst[done..done + n].copy_from_slice(&rec[within..within + n]);
        at += n;
        done += n;
    }
    *used = done as MPI_Count;
    MPI_SUCCESS
}

unsafe extern "C" fn unpackfn(
    _state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    offset: MPI_Count,
    src: *const c_void,
    src_size: MPI_Count,
) -> c_int {
    let elems = std::slice::from_raw_parts_mut(buf as *mut CElem, count as usize);
    let src = std::slice::from_raw_parts(src as *const u8, src_size as usize);
    // Stage whole records; this simple unpacker requires record-aligned
    // fragments only at the end (our fragments are large, records small).
    let mut at = offset as usize;
    #[allow(clippy::explicit_counter_loop)] // mirrors the C-style original
    for &byte in src {
        let e = &mut elems[at / SCALARS];
        let within = at % SCALARS;
        // Write bytewise through a raw view of the packed record layout.
        let rec_ptr = match within {
            0..=3 => (&mut e.a as *mut i32 as *mut u8).add(within),
            4..=7 => (&mut e.b as *mut i32 as *mut u8).add(within - 4),
            8..=11 => (&mut e.c as *mut i32 as *mut u8).add(within - 8),
            _ => (&mut e.d as *mut f64 as *mut u8).add(within - 12),
        };
        *rec_ptr = byte;
        at += 1;
    }
    MPI_SUCCESS
}

unsafe extern "C" fn region_countfn(
    _state: *mut c_void,
    _buf: *mut c_void,
    count: MPI_Count,
    region_count: *mut MPI_Count,
) -> c_int {
    *region_count = count; // one payload region per element
    MPI_SUCCESS
}

unsafe extern "C" fn regionfn(
    _state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    region_count: MPI_Count,
    reg_bases: *mut *mut c_void,
    reg_lens: *mut MPI_Count,
    reg_types: *mut MPI_Datatype,
) -> c_int {
    assert_eq!(count, region_count);
    let elems = std::slice::from_raw_parts(buf as *const CElem, count as usize);
    for (i, e) in elems.iter().enumerate() {
        *reg_bases.add(i) = e.payload as *mut c_void;
        *reg_lens.add(i) = (e.payload_len * 8) as MPI_Count;
        *reg_types.add(i) = MPI_BYTE;
    }
    MPI_SUCCESS
}

fn make_elem(i: usize, payload_len: usize) -> CElem {
    let payload: Vec<f64> = (0..payload_len).map(|j| (i * 1000 + j) as f64).collect();
    let mut payload = payload.into_boxed_slice();
    let ptr = payload.as_mut_ptr();
    std::mem::forget(payload);
    CElem {
        a: i as i32,
        b: (i * 2) as i32,
        c: (i * 3) as i32,
        d: i as f64 * 1.5,
        payload_len,
        payload: ptr,
    }
}

fn free_elem(e: &mut CElem) {
    if !e.payload.is_null() {
        // SAFETY: allocated in make_elem via boxed slice of payload_len.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                e.payload,
                e.payload_len,
            )));
        }
        e.payload = std::ptr::null_mut();
    }
}

fn create_type() -> MPI_Datatype {
    let mut ty: MPI_Datatype = 0;
    let rc = unsafe {
        MPI_Type_create_custom(
            Some(statefn),
            Some(freefn),
            Some(queryfn),
            Some(packfn),
            Some(unpackfn),
            Some(region_countfn),
            Some(regionfn),
            std::ptr::null_mut(),
            0,
            &mut ty,
        )
    };
    assert_eq!(rc, MPI_SUCCESS);
    ty
}

fn scenario_blocking_custom_exchange() {
    let ty = create_type();
    const N: usize = 8;
    const PAYLOAD: usize = 256;

    let sender = std::thread::spawn(move || {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let mut rank: c_int = -1;
        assert_eq!(
            unsafe { MPI_Comm_rank(MPI_COMM_WORLD, &mut rank) },
            MPI_SUCCESS
        );
        assert_eq!(rank, 0);
        let mut elems: Vec<CElem> = (0..N).map(|i| make_elem(i, PAYLOAD)).collect();
        let rc = unsafe {
            MPI_Send(
                elems.as_ptr().cast(),
                N as MPI_Count,
                ty,
                1,
                7,
                MPI_COMM_WORLD,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        elems.iter_mut().for_each(free_elem);
    });

    let receiver = std::thread::spawn(move || {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut size: c_int = 0;
        assert_eq!(
            unsafe { MPI_Comm_size(MPI_COMM_WORLD, &mut size) },
            MPI_SUCCESS
        );
        assert_eq!(size, 2);
        let mut elems: Vec<CElem> = (0..N).map(|i| make_elem(100 + i, PAYLOAD)).collect();
        // Zero the fields so we can verify they arrive.
        for e in &mut elems {
            e.a = 0;
            e.b = 0;
            e.c = 0;
            e.d = 0.0;
            // SAFETY: payload allocated with PAYLOAD elements.
            unsafe { std::slice::from_raw_parts_mut(e.payload, PAYLOAD).fill(0.0) };
        }
        let mut status = MPI_Status::default();
        let rc = unsafe {
            MPI_Recv(
                elems.as_mut_ptr().cast(),
                N as MPI_Count,
                ty,
                0,
                7,
                MPI_COMM_WORLD,
                &mut status,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        assert_eq!(status.MPI_SOURCE, 0);
        assert_eq!(status.MPI_TAG, 7);
        assert_eq!(status.count as usize, N * 20 + N * PAYLOAD * 8);
        for (i, e) in elems.iter().enumerate() {
            assert_eq!(e.a, i as i32);
            assert_eq!(e.b, (i * 2) as i32);
            assert_eq!(e.c, (i * 3) as i32);
            assert_eq!(e.d, i as f64 * 1.5);
            let p = unsafe { std::slice::from_raw_parts(e.payload, PAYLOAD) };
            for (j, v) in p.iter().enumerate() {
                assert_eq!(*v, (i * 1000 + j) as f64, "payload[{j}] of element {i}");
            }
        }
        elems.iter_mut().for_each(free_elem);
    });

    sender.join().unwrap();
    receiver.join().unwrap();
    assert_eq!(STATE_LIVE.load(Ordering::SeqCst), 0, "every state freed");
}

fn scenario_nonblocking_bytes() {
    let t0 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let data = vec![0x5au8; 4096];
        let mut req: MPI_Request = MPI_REQUEST_NULL;
        let rc = unsafe {
            MPI_Isend(
                data.as_ptr().cast(),
                data.len() as MPI_Count,
                MPI_BYTE,
                1,
                9,
                MPI_COMM_WORLD,
                &mut req,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        assert_eq!(
            unsafe { MPI_Wait(&mut req, MPI_STATUS_IGNORE) },
            MPI_SUCCESS
        );
        assert_eq!(req, MPI_REQUEST_NULL);
    });
    let t1 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut buf = vec![0u8; 4096];
        let mut req: MPI_Request = MPI_REQUEST_NULL;
        let rc = unsafe {
            MPI_Irecv(
                buf.as_mut_ptr().cast(),
                buf.len() as MPI_Count,
                MPI_BYTE,
                MPI_ANY_SOURCE,
                9,
                MPI_COMM_WORLD,
                &mut req,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        let mut status = MPI_Status::default();
        assert_eq!(unsafe { MPI_Wait(&mut req, &mut status) }, MPI_SUCCESS);
        assert_eq!(status.count, 4096);
        assert!(buf.iter().all(|b| *b == 0x5a));
    });
    t0.join().unwrap();
    t1.join().unwrap();
}

fn scenario_probe() {
    let t0 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let data = [1u8, 2, 3, 4, 5];
        let rc = unsafe { MPI_Send(data.as_ptr().cast(), 5, MPI_BYTE, 1, 11, MPI_COMM_WORLD) };
        assert_eq!(rc, MPI_SUCCESS);
    });
    let t1 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut status = MPI_Status::default();
        let rc = unsafe { MPI_Probe_sim(MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &mut status) };
        assert_eq!(rc, MPI_SUCCESS);
        assert_eq!(status.count, 5);
        assert_eq!(status.MPI_TAG, 11);
        // The message is still there; receive it (the mpi4py Mprobe pattern).
        let mut buf = vec![0u8; status.count as usize];
        let rc = unsafe {
            MPI_Recv(
                buf.as_mut_ptr().cast(),
                status.count,
                MPI_BYTE,
                status.MPI_SOURCE,
                status.MPI_TAG,
                MPI_COMM_WORLD,
                MPI_STATUS_IGNORE,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        assert_eq!(buf, vec![1, 2, 3, 4, 5]);
    });
    t0.join().unwrap();
    t1.join().unwrap();
}

fn scenario_truncation_error() {
    let t0 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let data = [0u8; 100];
        let rc = unsafe { MPI_Send(data.as_ptr().cast(), 100, MPI_BYTE, 1, 13, MPI_COMM_WORLD) };
        assert_eq!(rc, MPI_SUCCESS);
    });
    let t1 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut buf = vec![0u8; 10];
        let rc = unsafe {
            MPI_Recv(
                buf.as_mut_ptr().cast(),
                10,
                MPI_BYTE,
                0,
                13,
                MPI_COMM_WORLD,
                MPI_STATUS_IGNORE,
            )
        };
        assert_eq!(rc, MPI_ERR_TRUNCATE);
    });
    t0.join().unwrap();
    t1.join().unwrap();
}

fn scenario_derived_datatypes() {
    // Build struct { int a,b,c; /*gap*/ double d; } with the classic
    // constructors, commit, and exchange — the rsmpi baseline through C.
    let mut gapped: MPI_Datatype = 0;
    let blocklengths: [MPI_Count; 2] = [3, 1];
    let displacements: [MPI_Count; 2] = [0, 16];
    let types: [MPI_Datatype; 2] = [MPI_INT, MPI_DOUBLE];
    let rc = unsafe {
        MPI_Type_create_struct(
            2,
            blocklengths.as_ptr(),
            displacements.as_ptr(),
            types.as_ptr(),
            &mut gapped,
        )
    };
    assert_eq!(rc, MPI_SUCCESS);

    // Sending before commit is a type error (like real MPI).
    #[repr(C)]
    #[derive(Clone, Copy, Default, PartialEq, Debug)]
    struct Gapped {
        a: i32,
        b: i32,
        c: i32,
        d: f64,
    }
    assert_eq!(std::mem::size_of::<Gapped>(), 24);

    let t0 = std::thread::spawn(move || {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let elems: Vec<Gapped> = (0..50)
            .map(|i| Gapped {
                a: i,
                b: 2 * i,
                c: 3 * i,
                d: i as f64,
            })
            .collect();
        let rc = unsafe { MPI_Send(elems.as_ptr().cast(), 50, gapped, 1, 20, MPI_COMM_WORLD) };
        assert_eq!(rc, MPI_ERR_TYPE, "uncommitted type rejected");

        let mut committed = gapped;
        assert_eq!(unsafe { MPI_Type_commit(&mut committed) }, MPI_SUCCESS);
        let rc = unsafe { MPI_Send(elems.as_ptr().cast(), 50, committed, 1, 20, MPI_COMM_WORLD) };
        assert_eq!(rc, MPI_SUCCESS);
    });
    let t1 = std::thread::spawn(move || {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut committed = gapped;
        assert_eq!(unsafe { MPI_Type_commit(&mut committed) }, MPI_SUCCESS);
        let mut elems = vec![Gapped::default(); 50];
        let mut status = MPI_Status::default();
        let rc = unsafe {
            MPI_Recv(
                elems.as_mut_ptr().cast(),
                50,
                committed,
                0,
                20,
                MPI_COMM_WORLD,
                &mut status,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        assert_eq!(status.count, 50 * 20, "20 data bytes per element");
        let mut n: MPI_Count = 0;
        assert_eq!(
            unsafe { MPI_Get_count(&status, committed, &mut n) },
            MPI_SUCCESS
        );
        assert_eq!(n, 50);
        for (i, e) in elems.iter().enumerate() {
            let i = i as i32;
            assert_eq!(
                *e,
                Gapped {
                    a: i,
                    b: 2 * i,
                    c: 3 * i,
                    d: i as f64
                }
            );
        }
    });
    t0.join().unwrap();
    t1.join().unwrap();
}

fn scenario_predefined_int_exchange() {
    let t0 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let data: Vec<i32> = (0..100).collect();
        let rc = unsafe { MPI_Send(data.as_ptr().cast(), 100, MPI_INT, 1, 21, MPI_COMM_WORLD) };
        assert_eq!(rc, MPI_SUCCESS);
    });
    let t1 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut data = vec![0i32; 100];
        let mut status = MPI_Status::default();
        let rc = unsafe {
            MPI_Recv(
                data.as_mut_ptr().cast(),
                100,
                MPI_INT,
                0,
                21,
                MPI_COMM_WORLD,
                &mut status,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        let mut n: MPI_Count = 0;
        assert_eq!(
            unsafe { MPI_Get_count(&status, MPI_INT, &mut n) },
            MPI_SUCCESS
        );
        assert_eq!(n, 100);
        assert_eq!(data, (0..100).collect::<Vec<i32>>());
    });
    t0.join().unwrap();
    t1.join().unwrap();
}

fn scenario_matched_probe() {
    // The mpi4py pattern: Mprobe for the size, allocate, Mrecv.
    let t0 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let data: Vec<u8> = (0..77).collect();
        let rc = unsafe { MPI_Send(data.as_ptr().cast(), 77, MPI_BYTE, 1, 30, MPI_COMM_WORLD) };
        assert_eq!(rc, MPI_SUCCESS);
    });
    let t1 = std::thread::spawn(|| {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        // First check Iprobe is nonblocking and eventually sees it.
        let mut flag: c_int = 0;
        let mut status = MPI_Status::default();
        while flag == 0 {
            let rc = unsafe {
                MPI_Iprobe(
                    MPI_ANY_SOURCE,
                    MPI_ANY_TAG,
                    MPI_COMM_WORLD,
                    &mut flag,
                    &mut status,
                )
            };
            assert_eq!(rc, MPI_SUCCESS);
        }
        assert_eq!(status.count, 77);

        let mut msg: MPI_Request = MPI_REQUEST_NULL;
        let rc =
            unsafe { MPI_Mprobe_sim(MPI_ANY_SOURCE, 30, MPI_COMM_WORLD, &mut msg, &mut status) };
        assert_eq!(rc, MPI_SUCCESS);
        let mut buf = vec![0u8; status.count as usize];
        let rc =
            unsafe { MPI_Mrecv_sim(buf.as_mut_ptr().cast(), status.count, &mut msg, &mut status) };
        assert_eq!(rc, MPI_SUCCESS);
        assert_eq!(msg, MPI_REQUEST_NULL);
        assert_eq!(buf, (0..77).collect::<Vec<u8>>());
        // Double-consume is a request error.
        let mut stale: MPI_Request = -2;
        let rc =
            unsafe { MPI_Mrecv_sim(buf.as_mut_ptr().cast(), 1, &mut stale, MPI_STATUS_IGNORE) };
        assert_eq!(rc, MPI_ERR_REQUEST);
    });
    t0.join().unwrap();
    t1.join().unwrap();
}

#[test]
fn c_api_end_to_end() {
    assert_eq!(mpi_init_sim(2), MPI_SUCCESS);
    assert_eq!(mpi_init_sim(2), MPI_ERR_ARG, "double init rejected");

    scenario_blocking_custom_exchange();
    scenario_nonblocking_bytes();
    scenario_probe();
    scenario_truncation_error();
    scenario_derived_datatypes();
    scenario_predefined_int_exchange();
    scenario_matched_probe();

    assert_eq!(mpi_finalize_sim(), MPI_SUCCESS);
}
