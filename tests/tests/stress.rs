//! Thread-safety stress: the paper's motivation includes avoiding
//! "higher-level locking mechanisms… per communicator and per tag" that
//! multi-message protocols force on bindings. Here many threads hammer the
//! same rank pair concurrently — with matched probes and single-message
//! custom datatypes, no application locking is needed.

use mpicd::World;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn concurrent_senders_and_receivers_on_one_pair() {
    const THREADS: usize = 4;
    const MSGS: usize = 50;

    let world = World::new(2);
    let received = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Sender threads on rank 0: each owns a tag lane.
        for t in 0..THREADS {
            let c0 = world.comm(0);
            s.spawn(move || {
                for i in 0..MSGS {
                    let payload: Vec<Vec<i32>> =
                        vec![vec![(t * 1000 + i) as i32; 16], vec![i as i32; 7]];
                    c0.send(&payload, 1, t as i32).unwrap();
                }
            });
        }
        // Receiver threads on rank 1: one per lane.
        for t in 0..THREADS {
            let c1 = world.comm(1);
            let received = &received;
            s.spawn(move || {
                for i in 0..MSGS {
                    let mut buf: Vec<Vec<i32>> = vec![vec![0; 16], vec![0; 7]];
                    c1.recv(&mut buf, 0, t as i32).unwrap();
                    assert_eq!(buf[0], vec![(t * 1000 + i) as i32; 16], "lane {t} msg {i}");
                    received.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(received.load(Ordering::Relaxed), THREADS * MSGS);
    assert_eq!(world.fabric().stats().messages as usize, THREADS * MSGS);
}

#[test]
fn mixed_probe_and_matched_probe_threads() {
    // Two receiver threads race on ANY_TAG with matched probes: every
    // message is claimed exactly once (plain probe + recv would race).
    const MSGS: usize = 120;

    let world = World::new(2);
    let claimed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        let c0 = world.comm(0);
        s.spawn(move || {
            for i in 0..MSGS {
                let data = vec![i as u8; 64];
                c0.send(&data, 1, (i % 5) as i32).unwrap();
            }
        });
        for _ in 0..2 {
            let c1 = world.comm(1);
            let claimed = &claimed;
            s.spawn(move || loop {
                if claimed.load(Ordering::SeqCst) >= MSGS {
                    break;
                }
                if let Some((st, msg)) =
                    c1.improbe(mpicd::fabric::ANY_SOURCE, mpicd::fabric::ANY_TAG)
                {
                    let mut buf = vec![0u8; st.bytes];
                    c1.mrecv(&mut buf, msg).unwrap();
                    assert!(buf.iter().all(|b| *b == buf[0]), "message intact");
                    claimed.fetch_add(1, Ordering::SeqCst);
                } else {
                    std::hint::spin_loop();
                }
            });
        }
    });
    assert_eq!(claimed.load(Ordering::SeqCst), MSGS);
}

#[test]
fn all_pairs_all_to_all_bytes() {
    const N: usize = 4;
    let world = World::new(N);
    let comms = world.comms();
    std::thread::scope(|s| {
        for comm in &comms {
            s.spawn(move || {
                let me = comm.rank();
                // Send to everyone (tag = receiver), then receive from everyone.
                for dst in 0..N {
                    if dst != me {
                        let data = vec![(me * 16 + dst) as u8; 128];
                        comm.send(&data, dst, dst as i32).unwrap();
                    }
                }
                for src in 0..N {
                    if src != me {
                        let mut buf = vec![0u8; 128];
                        comm.recv(&mut buf, src as i32, me as i32).unwrap();
                        assert_eq!(buf[0], (src * 16 + me) as u8);
                    }
                }
            });
        }
    });
    assert_eq!(world.fabric().stats().messages as usize, N * (N - 1));
}

#[test]
fn rendezvous_storm_completes() {
    // Many large (rendezvous) custom sends queued before any receive.
    let world = World::new(2);
    let c0 = world.comm(0);
    let c1 = world.comm(1);
    const K: usize = 8;
    let payloads: Vec<Vec<Vec<i32>>> = (0..K)
        .map(|i| vec![vec![i as i32; 20_000], vec![-(i as i32); 123]])
        .collect();

    std::thread::scope(|s| {
        let pr = &payloads;
        s.spawn(move || {
            for p in pr {
                c0.send(p, 1, 3).unwrap();
            }
        });
        s.spawn(move || {
            // Delay so every send queues as unexpected first.
            std::thread::sleep(std::time::Duration::from_millis(30));
            for i in 0..K {
                let mut buf: Vec<Vec<i32>> = vec![vec![0; 20_000], vec![0; 123]];
                c1.recv(&mut buf, 0, 3).unwrap();
                assert_eq!(buf[0][0], i as i32, "non-overtaking order");
            }
        });
    });
}
