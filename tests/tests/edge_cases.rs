//! Edge cases MPI implementations must get right: self-sends, zero-size
//! messages, single-rank worlds, tag extremes, huge region counts.

use mpicd::types::StructSimple;
use mpicd::World;

#[test]
fn send_to_self_eager() {
    // Eager self-send: completes at post, received later on the same rank.
    let world = World::new(2);
    let c0 = world.comm(0);
    let data = vec![1i32, 2, 3];
    c0.scope(|s| s.isend(&data, 0, 5)).unwrap();
    let mut out = vec![0i32; 3];
    c0.recv(&mut out, 0, 5).unwrap();
    assert_eq!(out, data);
}

#[test]
fn send_to_self_custom_nonblocking() {
    // Custom (always deferred) self-send must be posted nonblocking, then
    // matched by the same rank's receive — the single-threaded composition.
    let world = World::new(1);
    let c = world.comm(0);
    let send: Vec<StructSimple> = (0..10).map(StructSimple::generate).collect();
    let mut recv = vec![StructSimple::default(); 10];
    mpicd::transfer(&c, &c, &send, &mut recv, 0).unwrap();
    assert_eq!(recv, send);
}

#[test]
fn zero_byte_messages() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let empty: Vec<u8> = vec![];
    let mut out: Vec<u8> = vec![];
    let st = mpicd::transfer(&a, &b, &empty, &mut out, 0).unwrap();
    assert_eq!(st.bytes, 0);
    assert_eq!(
        world.fabric().stats().messages,
        1,
        "zero-size still a message"
    );
}

#[test]
fn zero_element_custom_type() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let send: Vec<StructSimple> = vec![];
    let mut recv: Vec<StructSimple> = vec![];
    mpicd::transfer(&a, &b, &send, &mut recv, 0).unwrap();
    assert!(recv.is_empty());
}

#[test]
fn single_rank_world_collectives() {
    let world = World::new(1);
    let c = world.comm(0);
    let mut buf = vec![42.0f64; 8];
    mpicd::collective::bcast(&c, &mut buf, 0).unwrap();
    mpicd::collective::allreduce_f64(&c, &mut buf, mpicd::collective::ReduceOp::Sum).unwrap();
    assert_eq!(buf, vec![42.0; 8]);
    c.barrier().unwrap();
}

#[test]
fn extreme_tags() {
    let world = World::new(2);
    let (a, b) = world.pair();
    for tag in [0, 1, i32::MAX - 100] {
        a.scope(|s| s.isend(&[9u8][..], 1, tag)).unwrap();
        let mut out = [0u8; 1];
        b.recv(&mut out[..], 0, tag).unwrap();
        assert_eq!(out[0], 9, "tag {tag}");
    }
}

#[test]
fn many_tiny_regions_one_message() {
    // 2048 single-element subvectors: a worst-case iov list.
    let world = World::new(2);
    let (a, b) = world.pair();
    let send: Vec<Vec<i32>> = (0..2048).map(|i| vec![i]).collect();
    let mut recv: Vec<Vec<i32>> = vec![vec![0]; 2048];
    mpicd::transfer(&a, &b, &send, &mut recv, 0).unwrap();
    assert_eq!(recv, send);
    let stats = world.fabric().stats();
    assert_eq!(stats.messages, 1);
    assert_eq!(stats.regions, 2049);
}

#[test]
fn mixed_empty_and_full_subvectors() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let send: Vec<Vec<i32>> = vec![vec![], vec![1, 2, 3], vec![], vec![4], vec![]];
    let mut recv: Vec<Vec<i32>> = vec![vec![], vec![0; 3], vec![], vec![0], vec![]];
    mpicd::transfer(&a, &b, &send, &mut recv, 0).unwrap();
    assert_eq!(recv, send);
}

#[test]
fn wildcard_recv_of_custom_type() {
    let world = World::new(3);
    let c2 = world.comm(2);
    let c1 = world.comm(1);
    std::thread::scope(|s| {
        s.spawn(move || {
            let payload: Vec<Vec<i32>> = vec![vec![7; 5]];
            c1.send(&payload, 2, 9).unwrap();
        });
        s.spawn(move || {
            let mut buf: Vec<Vec<i32>> = vec![vec![0; 5]];
            let st = c2
                .recv(&mut buf, mpicd::fabric::ANY_SOURCE, mpicd::fabric::ANY_TAG)
                .unwrap();
            assert_eq!(st.source, 1);
            assert_eq!(buf[0], vec![7; 5]);
        });
    });
}

#[test]
fn huge_single_message() {
    // 32 MiB through the rendezvous pipeline.
    let world = World::new(2);
    let (a, b) = world.pair();
    let send = vec![0xCDu8; 32 << 20];
    let mut recv = vec![0u8; 32 << 20];
    mpicd::transfer(&a, &b, &send, &mut recv, 0).unwrap();
    assert_eq!(recv[0], 0xCD);
    assert_eq!(recv[(32 << 20) - 1], 0xCD);
    assert_eq!(world.fabric().stats().rendezvous, 1);
}

#[test]
fn ethernet_preset_flips_region_verdict() {
    // On commodity ethernet (expensive per-descriptor gather), region
    // transfer loses to packing even for MILC's few/large regions — the
    // ablation claim as a test, using the wire presets.
    use mpicd::fabric::WireModel;
    let size = 64 * 1024;
    let wire_ns = |model: WireModel, regions: usize| {
        let world = mpicd::World::with_model(2, model);
        let (a, b) = world.pair();
        let sender = mpicd_ddtbench::make("MILC", size);
        let mut receiver = mpicd_ddtbench::make("MILC", size);
        let sctx = if regions > 0 {
            sender.region_pack_ctx().expect("MILC supports regions")
        } else {
            sender.custom_pack_ctx()
        };
        let mut rctx = if regions > 0 {
            receiver.region_unpack_ctx().expect("MILC supports regions")
        } else {
            receiver.custom_unpack_ctx()
        };
        mpicd::transfer_custom(&a, &b, sctx, &mut *rctx, 0).unwrap();
        world.fabric().ledger().total_ns()
    };
    // InfiniBand: the 16-region iov message costs barely more wire time
    // than the packed one (small γ).
    let ib_pack = wire_ns(WireModel::infiniband_100g(), 0);
    let ib_regions = wire_ns(WireModel::infiniband_100g(), 1);
    assert!(ib_regions < ib_pack * 2.0);
    // Ethernet: per-region descriptor cost dominates.
    let eth_pack = wire_ns(WireModel::ethernet_10g(), 0);
    let eth_regions = wire_ns(WireModel::ethernet_10g(), 1);
    assert!(eth_regions > eth_pack, "regions pay γ on ethernet");
}
