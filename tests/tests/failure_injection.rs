//! Failure injection: the paper makes error propagation a design pillar
//! ("Errors are propagated through return values… Error handling is
//! crucial for serialization libraries that can fail in the case of
//! invalid data"). These tests force failures at every callback site and
//! check they surface as errors — with no hangs, panics, or leaks.

use mpicd::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use mpicd::fabric::{FabricError, WireModel};
use mpicd::{Error, Result, World};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A packer that fails after producing `fail_after` bytes.
struct FailingPack {
    data: Vec<u8>,
    fail_after: usize,
    code: i32,
}

impl CustomPack for FailingPack {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.data.len())
    }
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        if offset >= self.fail_after {
            return Err(Error::Serialization(self.code));
        }
        let n = dst
            .len()
            .min(self.data.len() - offset)
            .min(self.fail_after - offset);
        dst[..n].copy_from_slice(&self.data[offset..offset + n]);
        Ok(n)
    }
}

/// An unpacker that rejects everything.
struct RejectingUnpack {
    expected: usize,
    code: i32,
}

impl CustomUnpack for RejectingUnpack {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.expected)
    }
    fn unpack(&mut self, _offset: usize, _src: &[u8]) -> Result<()> {
        Err(Error::Serialization(self.code))
    }
}

/// Sink unpacker that accepts everything.
struct SinkUnpack {
    expected: usize,
}

impl CustomUnpack for SinkUnpack {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.expected)
    }
    fn unpack(&mut self, _offset: usize, _src: &[u8]) -> Result<()> {
        Ok(())
    }
}

#[test]
fn pack_failure_mid_stream_fails_both_sides() {
    // Fragment size 64 so the failure happens on a later fragment.
    let model = WireModel {
        frag_size: 64,
        ..WireModel::default()
    };
    let world = World::with_model(2, model);
    let (a, b) = world.pair();

    let sctx = Box::new(FailingPack {
        data: vec![7u8; 1000],
        fail_after: 200,
        code: 42,
    });
    let mut rctx = SinkUnpack { expected: 1000 };
    let err = mpicd::transfer_custom(&a, &b, sctx, &mut rctx, 0).unwrap_err();
    assert_eq!(err, Error::Fabric(FabricError::PackFailed(42)));
}

#[test]
fn unpack_failure_propagates_code() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let sctx = Box::new(FailingPack {
        data: vec![1u8; 100],
        fail_after: usize::MAX,
        code: 0,
    });
    let mut rctx = RejectingUnpack {
        expected: 100,
        code: 99,
    };
    let err = mpicd::transfer_custom(&a, &b, sctx, &mut rctx, 0).unwrap_err();
    assert_eq!(err, Error::Fabric(FabricError::UnpackFailed(99)));
}

#[test]
fn query_failure_aborts_before_posting() {
    struct BadQuery;
    impl CustomPack for BadQuery {
        fn packed_size(&self) -> Result<usize> {
            Err(Error::Serialization(13))
        }
        fn pack(&mut self, _o: usize, _d: &mut [u8]) -> Result<usize> {
            unreachable!("pack must not run after a failed query")
        }
    }
    let world = World::new(2);
    let (a, _b) = world.pair();
    let err = a.send_custom(Box::new(BadQuery), 1, 0).unwrap_err();
    assert_eq!(err, Error::Serialization(13));
    assert_eq!(world.fabric().stats().messages, 0, "nothing hit the wire");
}

#[test]
fn region_failure_aborts_before_posting() {
    struct BadRegions;
    impl CustomPack for BadRegions {
        fn packed_size(&self) -> Result<usize> {
            Ok(8)
        }
        fn pack(&mut self, _o: usize, dst: &mut [u8]) -> Result<usize> {
            Ok(dst.len().min(8))
        }
        fn regions(&mut self) -> Result<Vec<SendRegion>> {
            Err(Error::Serialization(21))
        }
    }
    let world = World::new(2);
    let (a, _b) = world.pair();
    let err = a.send_custom(Box::new(BadRegions), 1, 0).unwrap_err();
    assert_eq!(err, Error::Serialization(21));
}

#[test]
fn stalled_packer_detected_not_hung() {
    struct Stall;
    impl CustomPack for Stall {
        fn packed_size(&self) -> Result<usize> {
            Ok(64)
        }
        fn pack(&mut self, _o: usize, _d: &mut [u8]) -> Result<usize> {
            Ok(0) // never makes progress
        }
    }
    let world = World::new(2);
    let (a, b) = world.pair();
    let mut rctx = SinkUnpack { expected: 64 };
    let err = mpicd::transfer_custom(&a, &b, Box::new(Stall), &mut rctx, 0).unwrap_err();
    assert!(matches!(
        err,
        Error::Fabric(FabricError::PackStalled { .. })
    ));
}

#[test]
fn finish_failure_surfaces_after_data_arrives() {
    struct PickyFinish {
        expected: usize,
    }
    impl CustomUnpack for PickyFinish {
        fn packed_size(&self) -> Result<usize> {
            Ok(self.expected)
        }
        fn unpack(&mut self, _o: usize, _s: &[u8]) -> Result<()> {
            Ok(())
        }
        fn finish(&mut self) -> Result<()> {
            Err(Error::InvalidHeader("validation failed in finish"))
        }
    }
    let world = World::new(2);
    let (a, b) = world.pair();
    let sctx = Box::new(FailingPack {
        data: vec![1u8; 32],
        fail_after: usize::MAX,
        code: 0,
    });
    let mut rctx = PickyFinish { expected: 32 };
    let err = mpicd::transfer_custom(&a, &b, sctx, &mut rctx, 0).unwrap_err();
    assert!(matches!(err, Error::InvalidHeader(_)));
}

#[test]
fn scope_panic_cancels_pending_operations() {
    let world = World::new(2);
    let (a, _b) = world.pair();
    let data = vec![0u8; 200_000]; // rendezvous-sized: stays pending
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = a.scope(|s| {
            s.isend(&data, 1, 0)?;
            panic!("application error mid-scope");
            #[allow(unreachable_code)]
            Ok(())
        });
    }));
    assert!(result.is_err(), "panic propagates");
    // The pending send was cancelled: a later receive must not match it.
    let (_, b) = world.pair();
    assert!(b.iprobe(0, 0).is_none(), "cancelled send is not matchable");
}

#[test]
fn region_shape_mismatch_truncates() {
    // Receiver posts fewer region bytes than the sender ships.
    struct OneRegionPack {
        region: Vec<u8>,
    }
    impl CustomPack for OneRegionPack {
        fn packed_size(&self) -> Result<usize> {
            Ok(0)
        }
        fn pack(&mut self, _o: usize, _d: &mut [u8]) -> Result<usize> {
            Ok(0)
        }
        fn regions(&mut self) -> Result<Vec<SendRegion>> {
            Ok(vec![SendRegion::from_slice(&self.region)])
        }
    }
    struct SmallRegionUnpack {
        region: Vec<u8>,
    }
    impl CustomUnpack for SmallRegionUnpack {
        fn packed_size(&self) -> Result<usize> {
            Ok(0)
        }
        fn unpack(&mut self, _o: usize, _s: &[u8]) -> Result<()> {
            Ok(())
        }
        fn regions(&mut self) -> Result<Vec<RecvRegion>> {
            Ok(vec![RecvRegion::from_slice(self.region.as_mut_slice())])
        }
    }
    let world = World::new(2);
    let (a, b) = world.pair();
    let sctx = Box::new(OneRegionPack {
        region: vec![9u8; 512],
    });
    let mut rctx = SmallRegionUnpack {
        region: vec![0u8; 256],
    };
    let err = mpicd::transfer_custom(&a, &b, sctx, &mut rctx, 0).unwrap_err();
    assert!(matches!(err, Error::Fabric(FabricError::Truncated { .. })));
}

#[test]
fn state_objects_freed_exactly_once_under_errors() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);

    struct Counted {
        fail: bool,
    }
    impl Counted {
        fn new(fail: bool) -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Self { fail }
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
    impl CustomPack for Counted {
        fn packed_size(&self) -> Result<usize> {
            Ok(16)
        }
        fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
            if self.fail {
                return Err(Error::Serialization(5));
            }
            Ok(dst.len().min(16 - offset))
        }
    }

    let world = World::new(2);
    let (a, b) = world.pair();
    for fail in [false, true] {
        let mut rctx = SinkUnpack { expected: 16 };
        let _ = mpicd::transfer_custom(&a, &b, Box::new(Counted::new(fail)), &mut rctx, 0);
    }
    assert_eq!(
        LIVE.load(Ordering::SeqCst),
        0,
        "every context dropped (freefn semantics)"
    );
    let _ = Arc::new(()); // silence unused-import lint paths on some configs
}
