//! Byte-identity of the wide-word/autotuned pack kernels across every
//! DDTBench pattern: the compiled plan must match the interpreted engine
//! and the convertor baseline under every kernel policy — the static
//! mapping, the legacy mapping, every forced kernel, and the autotuner —
//! including suspend/resume at fragment boundaries that fall mid-word
//! inside the gather kernels' packed chunks.
//!
//! The kernel policy is process-global, so all policy-sweeping logic
//! lives in one `#[test]` (test threads share the globals).

use mpicd_datatype::{plan, Kernel, KernelPolicy};

#[test]
fn ddtbench_identity_under_every_kernel_policy() {
    let target = 32 * 1024;
    let policies = [
        KernelPolicy::Auto,
        KernelPolicy::Legacy,
        KernelPolicy::Force(Kernel::Fixed4),
        KernelPolicy::Force(Kernel::Fixed8),
        KernelPolicy::Force(Kernel::Fixed16),
        KernelPolicy::Force(Kernel::Gather64),
        KernelPolicy::Force(Kernel::Gather128),
        KernelPolicy::Force(Kernel::Wide),
        KernelPolicy::Force(Kernel::Generic),
    ];

    for name in mpicd_ddtbench::BENCHMARKS {
        let p = mpicd_ddtbench::make(name, target);
        let dt = p.datatype();
        let convertor = dt.commit_convertor().unwrap();
        let interpreted = dt.commit_interpreted().unwrap();
        let compiled = dt.commit().unwrap();
        let base = p.base();
        assert!(compiled.required_span(1) <= base.len());

        let reference = convertor.pack_slice(base, 1).unwrap();
        assert_eq!(
            interpreted.pack_slice(base, 1).unwrap(),
            reference,
            "{name}: interpreted diverges from convertor"
        );

        for policy in policies {
            for tune in [false, true] {
                plan::set_kernel_policy(policy);
                plan::set_tuning(tune);
                assert_eq!(
                    compiled.pack_slice(base, 1).unwrap(),
                    reference,
                    "{name}: whole-stream pack diverges under {policy:?} tune={tune}"
                );
            }
        }

        // Suspend/resume at every flavor of awkward boundary: fragment
        // sizes that are prime (never aligned to a block or packed word),
        // exactly one wide word, and page-crossing. Under the gather
        // kernels a 13-byte fragment ends mid-u64/mid-u128 constantly.
        for policy in [
            KernelPolicy::Force(Kernel::Gather64),
            KernelPolicy::Force(Kernel::Gather128),
            KernelPolicy::Force(Kernel::Wide),
            KernelPolicy::Auto,
        ] {
            plan::set_kernel_policy(policy);
            plan::set_tuning(false);
            for frag in [13usize, 16, 4099] {
                let mut acc = Vec::with_capacity(reference.len());
                let mut off = 0usize;
                loop {
                    let mut buf = vec![0u8; frag];
                    // SAFETY: `base` spans the committed type (asserted
                    // via `required_span` above).
                    let n = unsafe { compiled.pack_segment(base.as_ptr(), 1, off, &mut buf) };
                    if n == 0 {
                        break;
                    }
                    acc.extend_from_slice(&buf[..n]);
                    off += n;
                }
                assert_eq!(
                    acc, reference,
                    "{name}: fragmented pack diverges under {policy:?} frag={frag}"
                );

                // Scatter the same fragments back out of order; repacking
                // the result must reproduce the stream.
                let mut dst = vec![0u8; compiled.required_span(1)];
                let mut cuts: Vec<usize> = (0..reference.len()).step_by(frag).collect();
                cuts.reverse();
                for &c in &cuts {
                    let end = (c + frag).min(reference.len());
                    // SAFETY: `dst` spans the committed type.
                    unsafe {
                        compiled.unpack_segment(dst.as_mut_ptr(), 1, c, &reference[c..end]);
                    }
                }
                assert_eq!(
                    compiled.pack_slice(&dst, 1).unwrap(),
                    reference,
                    "{name}: fragmented unpack diverges under {policy:?} frag={frag}"
                );
            }
        }

        plan::set_kernel_policy(KernelPolicy::Auto);
        plan::set_tuning(true);
    }

    // The autotuner itself: a large fine-grained pattern races candidates
    // on its first big execution and the raced output is still identical.
    let p = mpicd_ddtbench::make("LAMMPS", 1 << 20);
    let dt = p.datatype();
    let compiled = dt.commit().unwrap();
    let reference = dt
        .commit_interpreted()
        .unwrap()
        .pack_slice(p.base(), 1)
        .unwrap();
    let races_before = mpicd_obs::global().snapshot().counter("plan.tune.races");
    assert_eq!(
        compiled.pack_slice(p.base(), 1).unwrap(),
        reference,
        "LAMMPS: raced pack diverges"
    );
    assert_eq!(
        compiled.pack_slice(p.base(), 1).unwrap(),
        reference,
        "LAMMPS: post-race pack diverges"
    );
    let races_after = mpicd_obs::global().snapshot().counter("plan.tune.races");
    assert!(
        races_after > races_before,
        "large pack races candidates ({races_before} -> {races_after})"
    );
}
