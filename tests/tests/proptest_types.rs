//! Property-style tests over the paper's evaluation types and the
//! loop-nest machinery, driven by the workspace's seeded xorshift64* PRNG:
//! random shapes, random fragmentation, cross-engine agreement.

use mpicd::types::{
    pack_struct_simple, pack_struct_vec, unpack_struct_simple, unpack_struct_vec, StructSimple,
    StructVec,
};
use mpicd::vecvec::{pack_double_vec, unpack_double_vec};
use mpicd::{Buffer, LoopNest, SendView, World};
use mpicd_obs::XorShift64Star;

fn drive_pack(view: SendView<'_>, total: usize, frag: usize) -> Vec<u8> {
    match view {
        SendView::Contiguous(b) => b.to_vec(),
        SendView::Custom(mut ctx) => {
            assert_eq!(ctx.packed_size().unwrap(), total);
            let mut out = vec![0u8; total];
            let mut off = 0usize;
            while off < total {
                let end = (off + frag.max(1)).min(total);
                let n = ctx.pack(off, &mut out[off..end]).unwrap();
                assert!(n > 0, "progress");
                off += n;
            }
            out
        }
    }
}

#[test]
fn struct_simple_custom_equals_manual() {
    let mut rng = XorShift64Star::new(0x51AB_1E01);
    for _ in 0..32 {
        let count = rng.range(1, 300);
        let frag = rng.range(1, 64);
        let elems: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let manual = pack_struct_simple(&elems);
        let custom = drive_pack(elems.send_view(), 20 * count, frag);
        assert_eq!(custom, manual, "count={count} frag={frag}");
    }
}

#[test]
fn struct_simple_manual_roundtrip() {
    let mut rng = XorShift64Star::new(0x51AB_1E02);
    for _ in 0..32 {
        let count = rng.range(1, 200);
        let elems: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let packed = pack_struct_simple(&elems);
        let mut out = vec![StructSimple::default(); count];
        unpack_struct_simple(&packed, &mut out).unwrap();
        assert_eq!(out, elems, "count={count}");
    }
}

#[test]
fn struct_vec_manual_roundtrip() {
    let mut rng = XorShift64Star::new(0x51AB_1E03);
    for _ in 0..32 {
        let count = rng.range(1, 6);
        let elems: Vec<StructVec> = (0..count).map(StructVec::generate).collect();
        let packed = pack_struct_vec(&elems);
        let mut out = vec![StructVec::default(); count];
        unpack_struct_vec(&packed, &mut out).unwrap();
        assert_eq!(out, elems, "count={count}");
    }
}

#[test]
fn double_vec_roundtrip_random_shapes() {
    let mut rng = XorShift64Star::new(0xD0B1_E001);
    for _ in 0..32 {
        let lens: Vec<usize> = (0..rng.range(0, 12)).map(|_| rng.range(0, 200)).collect();
        let vecs: Vec<Vec<i32>> = lens
            .iter()
            .enumerate()
            .map(|(i, l)| (0..*l as i32).map(|x| x * (i as i32 + 1)).collect())
            .collect();
        let packed = pack_double_vec(&vecs);
        let mut out: Vec<Vec<i32>> = lens.iter().map(|l| vec![0; *l]).collect();
        unpack_double_vec(&packed, &mut out).unwrap();
        assert_eq!(out, vecs, "lens={lens:?}");
    }
}

#[test]
fn double_vec_transfer_random_shapes() {
    let mut rng = XorShift64Star::new(0xD0B1_E002);
    for _ in 0..32 {
        let lens: Vec<usize> = (0..rng.range(1, 8)).map(|_| rng.range(0, 100)).collect();
        let send: Vec<Vec<i32>> = lens
            .iter()
            .map(|l| (0..*l as i32).map(|x| x * 7 - 3).collect())
            .collect();
        let mut recv: Vec<Vec<i32>> = lens.iter().map(|l| vec![0; *l]).collect();
        let world = World::new(2);
        let (a, b) = world.pair();
        mpicd::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send, "lens={lens:?}");
    }
}

#[test]
fn loop_nest_offset_and_cursor_agree() {
    let mut rng = XorShift64Star::new(0x100_9E57);
    for case in 0..32 {
        let dims: Vec<usize> = (0..rng.range(1, 4)).map(|_| rng.range(1, 5)).collect();
        let run = 1usize << rng.range(0, 6);
        let gap = rng.range(1, 4);
        // Build strictly-nesting strides: innermost stride = run * gap.
        let mut strides = vec![0isize; dims.len()];
        let mut s = (run * gap) as isize;
        for d in (0..dims.len()).rev() {
            strides[d] = s;
            s *= dims[d] as isize;
        }
        let nest = LoopNest::new(dims.clone(), strides, run).unwrap();
        let span = nest.span().1 as usize;
        let src: Vec<u8> = (0..span).map(|i| (i % 253) as u8).collect();

        let reference = nest.pack_slice(&src).unwrap();

        let mut cur = nest.cursor();
        let mut acc = Vec::new();
        let mut frag = 3usize;
        while !cur.is_finished() {
            let mut buf = vec![0u8; frag];
            // SAFETY: src spans the nest.
            let n = unsafe { cur.pack_into(src.as_ptr(), &mut buf) };
            acc.extend_from_slice(&buf[..n]);
            frag = frag % 7 + 1;
        }
        assert_eq!(
            acc, reference,
            "case {case}: dims={dims:?} run={run} gap={gap}"
        );
    }
}

#[test]
fn loop_nest_matches_derived_datatype() {
    use mpicd_ddtbench::nestpat::NestPattern;
    let mut rng = XorShift64Star::new(0x100_9E58);
    for case in 0..32 {
        let d0 = rng.range(1, 4);
        let d1 = rng.range(1, 6);
        let run_words = rng.range(1, 4);
        let run = run_words * 8;
        let s1 = (2 * run) as isize;
        let s0 = d1 as isize * s1;
        let nest = LoopNest::new(vec![d0, d1], vec![s0, s1], run).unwrap();
        let dt = NestPattern::nest_datatype(&nest);
        let committed = dt.commit().unwrap();
        assert_eq!(committed.size(), nest.packed_size());

        let span = nest.span().1 as usize;
        let src: Vec<u8> = (0..span).map(|i| (i * 11 % 256) as u8).collect();
        assert_eq!(
            nest.pack_slice(&src).unwrap(),
            committed.pack_slice(&src, 1).unwrap(),
            "case {case}: d0={d0} d1={d1} run={run}"
        );
    }
}
