//! Ordering and out-of-order-delivery semantics.
//!
//! * MPI's non-overtaking guarantee across many interleaved tags,
//! * the `inorder` flag (Listing 2): offset-addressed unpackers tolerate
//!   out-of-order fragment delivery, in-order unpackers demand (and get)
//!   monotonic offsets when the flag is set.

use mpicd::datatype::{CustomPack, CustomUnpack};
use mpicd::fabric::WireModel;
use mpicd::{Result, World};
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn non_overtaking_across_interleaved_tags() {
    let world = World::new(2);
    let (a, b) = world.pair();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..100u8 {
                let tag = (i % 3) as i32;
                a.send(&[i][..], 1, tag).unwrap();
            }
        });
        s.spawn(|| {
            // Per tag, messages must arrive in send order.
            let mut last: [i16; 3] = [-1; 3];
            for _ in 0..100 {
                let st = b.probe(0, mpicd::fabric::ANY_TAG);
                let mut v = [0u8; 1];
                b.recv(&mut v[..], 0, st.tag).unwrap();
                let t = st.tag as usize;
                assert!(
                    (v[0] as i16) > last[t],
                    "tag {t}: {} arrived after {}",
                    v[0],
                    last[t]
                );
                last[t] = v[0] as i16;
            }
        });
    });
}

/// Offset-recording unpacker.
struct OffsetRecorder {
    expected: usize,
    offsets: Vec<usize>,
}

impl CustomUnpack for OffsetRecorder {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.expected)
    }
    fn unpack(&mut self, offset: usize, _src: &[u8]) -> Result<()> {
        self.offsets.push(offset);
        Ok(())
    }
}

/// Trivial streaming packer over owned data.
struct StreamPack {
    data: Vec<u8>,
    inorder: bool,
}

impl CustomPack for StreamPack {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.data.len())
    }
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        let n = dst.len().min(self.data.len() - offset);
        dst[..n].copy_from_slice(&self.data[offset..offset + n]);
        Ok(n)
    }
    fn inorder(&self) -> bool {
        self.inorder
    }
}

fn run_fragmented(inorder: bool, ooo_wire: bool) -> Vec<usize> {
    let model = WireModel {
        frag_size: 256,
        out_of_order_fragments: ooo_wire,
        ..WireModel::default()
    };
    let world = World::with_model(2, model);
    let (a, b) = world.pair();
    let sctx = Box::new(StreamPack {
        data: (0..2048u32).map(|i| i as u8).collect(),
        inorder,
    });
    let mut rctx = OffsetRecorder {
        expected: 2048,
        offsets: Vec::new(),
    };
    mpicd::transfer_custom(&a, &b, sctx, &mut rctx, 0).unwrap();
    rctx.offsets
}

#[test]
fn inorder_flag_forces_monotonic_fragments_even_on_ooo_wire() {
    let offsets = run_fragmented(true, true);
    assert_eq!(offsets.len(), 8, "2048 B in 256 B fragments");
    assert!(
        offsets.windows(2).all(|w| w[0] < w[1]),
        "monotonic: {offsets:?}"
    );
}

#[test]
fn ooo_wire_reorders_when_allowed() {
    let offsets = run_fragmented(false, true);
    assert_eq!(offsets.len(), 8);
    assert!(
        offsets.windows(2).any(|w| w[0] > w[1]),
        "expected reordering: {offsets:?}"
    );
    // Every fragment still delivered exactly once.
    let mut sorted = offsets.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 256, 512, 768, 1024, 1280, 1536, 1792]);
}

#[test]
fn in_order_wire_is_monotonic_regardless() {
    let offsets = run_fragmented(false, false);
    assert!(offsets.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn wildcard_receives_match_in_arrival_order() {
    let world = World::new(3);
    let comms = world.comms();
    let first_done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let c1 = &comms[1];
        let c2 = &comms[2];
        let flag = &first_done;
        s.spawn(move || {
            c1.send(&[11u8][..], 0, 5).unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        s.spawn(move || {
            // Ensure rank 1's message lands first.
            while !flag.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            c2.send(&[22u8][..], 0, 5).unwrap();
        });
        s.spawn(|| {
            let c0 = &comms[0];
            // Wait until both are queued, then match with wildcards.
            while c0.iprobe(2, 5).is_none() || c0.iprobe(1, 5).is_none() {
                std::hint::spin_loop();
            }
            let mut v = [0u8; 1];
            let st = c0
                .recv(
                    &mut v[..],
                    mpicd::fabric::ANY_SOURCE,
                    mpicd::fabric::ANY_TAG,
                )
                .unwrap();
            assert_eq!((st.source, v[0]), (1, 11), "earliest arrival matches first");
            c0.recv(&mut v[..], mpicd::fabric::ANY_SOURCE, 5).unwrap();
            assert_eq!(v[0], 22);
        });
    });
}
