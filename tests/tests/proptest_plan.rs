//! Property tests for the commit-time pack-plan compiler: on random type
//! trees (including hvector and resized constructors), the compiled plan
//! must be byte-identical to the interpreted merged-block engine and to the
//! convertor baseline — for whole-stream packing, for mid-fragment
//! suspend/resume, and for out-of-order unpacking — and recommitting an
//! equivalent type must hit the process-wide plan cache.

use mpicd_datatype::{Datatype, Primitive};
use mpicd_obs::XorShift64Star;

/// Random leaf primitive.
fn prim(rng: &mut XorShift64Star) -> Datatype {
    match rng.range(0, 4) {
        0 => Datatype::Predefined(Primitive::Byte),
        1 => Datatype::Predefined(Primitive::Int32),
        2 => Datatype::Predefined(Primitive::Int64),
        _ => Datatype::Predefined(Primitive::Double),
    }
}

/// Random non-negative-lb datatype tree of bounded depth. Extends the
/// `proptest_datatype` generator with the constructors the plan compiler
/// canonicalizes: hvector (byte strides) and resized (artificial extents).
fn datatype(rng: &mut XorShift64Star, depth: u32) -> Datatype {
    if depth == 0 || rng.chance(1, 4) {
        return prim(rng);
    }
    match rng.range(0, 6) {
        0 => {
            let count = rng.range(1, 5);
            Datatype::contiguous(count, datatype(rng, depth - 1))
        }
        1 => {
            let count = rng.range(1, 4);
            let bl = rng.range(1, 3);
            // Stride ≥ blocklength keeps blocks disjoint and lb = 0.
            let stride = (bl + rng.range(1, 3)) as isize;
            Datatype::vector(count, bl, stride, datatype(rng, depth - 1))
        }
        2 => {
            let child = datatype(rng, depth - 1);
            let count = rng.range(1, 4);
            let bl = rng.range(1, 3);
            // Byte stride past the block span keeps blocks disjoint.
            let stride_bytes = (bl * child.extent() + rng.range(0, 16)) as isize;
            Datatype::hvector(count, bl, stride_bytes, child)
        }
        3 => {
            let count = rng.range(1, 4);
            // Disjoint ascending displacements (in child extents).
            let blocks = (0..count).map(|i| (1usize, (i * 2) as isize)).collect();
            Datatype::indexed(blocks, datatype(rng, depth - 1))
        }
        4 => {
            let child = datatype(rng, depth - 1);
            // Pad the extent: elements of the resized type overlap nothing
            // but sit further apart than the natural layout.
            let extent = child.extent() + rng.range(0, 24);
            Datatype::resized(0, extent, child)
        }
        _ => {
            let a = datatype(rng, depth - 1);
            let b = datatype(rng, depth - 1);
            // Two fields, second placed past the first's span.
            let off = (a.extent() as isize).max(8);
            Datatype::structure(vec![(1, 0, a), (1, off, b)])
        }
    }
}

#[test]
fn compiled_plan_matches_interpreted_and_convertor() {
    let mut rng = XorShift64Star::new(0xDA7A_0010);
    for case in 0..96 {
        let t = datatype(&mut rng, 3);
        let count = rng.range(1, 4);
        let compiled = t.commit().unwrap();
        let interpreted = t.commit_interpreted().unwrap();
        let convertor = t.commit_convertor().unwrap();
        assert!(
            compiled.plan().is_some() || compiled.size() == 0,
            "case {case}"
        );
        assert!(interpreted.plan().is_none() && convertor.plan().is_none());
        if compiled.size() == 0 {
            continue;
        }
        let span = compiled.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 249) as u8).collect();
        let reference = interpreted.pack_slice(&src, count).unwrap();
        assert_eq!(
            compiled.pack_slice(&src, count).unwrap(),
            reference,
            "case {case}: compiled pack diverges from interpreted: {t:?}"
        );
        assert_eq!(
            convertor.pack_slice(&src, count).unwrap(),
            reference,
            "case {case}: convertor pack diverges: {t:?}"
        );

        // Unpack into identical sentinel buffers: data bytes equal by
        // construction, gap bytes untouched by all three engines.
        let mut via_plan = vec![0xA5u8; span];
        let mut via_interp = vec![0xA5u8; span];
        compiled
            .unpack_slice(&reference, &mut via_plan, count)
            .unwrap();
        interpreted
            .unpack_slice(&reference, &mut via_interp, count)
            .unwrap();
        assert_eq!(via_plan, via_interp, "case {case}: unpack diverges: {t:?}");
    }
}

#[test]
fn compiled_plan_suspends_and_resumes_mid_fragment() {
    let mut rng = XorShift64Star::new(0xDA7A_0011);
    for case in 0..96 {
        let t = datatype(&mut rng, 3);
        let frag = rng.range(1, 48);
        let compiled = t.commit().unwrap();
        if compiled.size() == 0 {
            continue;
        }
        let count = 3usize;
        let span = compiled.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 247) as u8).collect();
        let full = t
            .commit_interpreted()
            .unwrap()
            .pack_slice(&src, count)
            .unwrap();

        // Pack through arbitrary fragment sizes: every fragment boundary is
        // a suspend/resume point, usually mid-block.
        let mut acc = Vec::new();
        let mut off = 0usize;
        loop {
            let mut buf = vec![0u8; frag];
            let n = unsafe { compiled.pack_segment(src.as_ptr(), count, off, &mut buf) };
            if n == 0 {
                break;
            }
            acc.extend_from_slice(&buf[..n]);
            off += n;
        }
        assert_eq!(acc, full, "case {case}: frag={frag} {t:?}");

        // Unpack the same fragments out of order (reverse delivery).
        let mut cuts = Vec::new();
        let mut o = 0usize;
        while o < full.len() {
            cuts.push(o);
            o += frag;
        }
        let mut dst = vec![0u8; span];
        for &c in cuts.iter().rev() {
            let end = (c + frag).min(full.len());
            unsafe {
                compiled.unpack_segment(dst.as_mut_ptr(), count, c, &full[c..end]);
            }
        }
        assert_eq!(
            compiled.pack_slice(&dst, count).unwrap(),
            full,
            "case {case}: out-of-order unpack diverges"
        );
    }
}

#[test]
fn plan_cache_hits_on_repeated_equivalent_commits() {
    // Counters are process-global and monotonic, so deltas are robust to
    // the other tests running concurrently.
    let snap = || mpicd_obs::global().snapshot();
    let t = Datatype::vector(7, 3, 5, Datatype::Predefined(Primitive::Double));
    let before = snap();
    let first = t.commit().unwrap();
    let after_first = snap();
    assert!(
        after_first.counter("plan.cache.hits") + after_first.counter("plan.cache.misses")
            > before.counter("plan.cache.hits") + before.counter("plan.cache.misses"),
        "commit consulted the plan registry"
    );

    // Recommit the same description, and an equivalent one built from
    // different constructors: both must reuse the cached plan.
    let equivalent = Datatype::hvector(7, 3, 40, Datatype::Predefined(Primitive::Double));
    assert!(mpicd_datatype::equivalent(&t, &equivalent));
    let before_hits = snap().counter("plan.cache.hits");
    let second = t.commit().unwrap();
    let third = equivalent.commit().unwrap();
    let after_hits = snap().counter("plan.cache.hits");
    assert!(
        after_hits >= before_hits + 2,
        "repeated equivalent commits hit the plan cache ({before_hits} -> {after_hits})"
    );
    for c in [&first, &second, &third] {
        assert!(c.plan().is_some());
    }
    // Same registry entry, not merely equal plans.
    assert!(std::sync::Arc::ptr_eq(
        second.plan().unwrap(),
        third.plan().unwrap()
    ));
}

#[test]
fn kernel_byte_counters_attribute_packed_bytes() {
    // An 8-byte-block strided type must route its bytes through the fixed8
    // kernel counter when packed via the compiled plan.
    let t = Datatype::vector(64, 1, 2, Datatype::Predefined(Primitive::Double));
    let c = t.commit().unwrap();
    let src = vec![3u8; c.required_span(1)];
    let before = mpicd_obs::global()
        .snapshot()
        .counter("plan.kernel.fixed8_bytes");
    let packed = c.pack_slice(&src, 1).unwrap();
    let after = mpicd_obs::global()
        .snapshot()
        .counter("plan.kernel.fixed8_bytes");
    assert_eq!(packed.len(), 512);
    assert!(
        after >= before + 512,
        "fixed8 kernel bytes counted ({before} -> {after})"
    );
}

#[test]
fn plan_never_exceeds_interpreted_op_count() {
    let mut rng = XorShift64Star::new(0xDA7A_0012);
    for _ in 0..64 {
        let t = datatype(&mut rng, 3);
        let c = t.commit().unwrap();
        if let Some(plan) = c.plan() {
            assert!(
                plan.op_count() <= c.block_count().max(1),
                "canonicalization never expands the description: {t:?}"
            );
        }
    }
}
