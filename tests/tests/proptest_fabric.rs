//! Property tests for the fabric: arbitrary scatter/gather splits on both
//! sides must move the same byte stream; protocol selection must follow
//! the threshold; arbitrary fragment sizes must not change results.

use mpicd_fabric::{Fabric, IovEntry, IovEntryMut, RecvDesc, SendDesc, WireModel};
use proptest::prelude::*;

/// Split `total` bytes into 1..=6 chunks.
fn splits(total: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=total.max(1), 1..6).prop_map(move |cuts| {
        let mut remaining = total;
        let mut out = Vec::new();
        for c in cuts {
            if remaining == 0 {
                break;
            }
            let take = c.min(remaining);
            out.push(take);
            remaining -= take;
        }
        if remaining > 0 {
            out.push(remaining);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iov_to_iov_streams_bytes(
        total in 1usize..5000,
        send_split_seed in any::<u64>(),
        frag in prop_oneof![Just(16usize), Just(64), Just(1024), Just(64*1024)],
    ) {
        // Derive both splits deterministically from the seed.
        let model = WireModel { frag_size: frag, ..WireModel::zero_cost() };
        let fabric = Fabric::with_model(2, model);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();

        let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();

        // Pseudo-random contiguous split of the send and recv sides.
        let mut rng = send_split_seed | 1;
        let mut next = move |max: usize| {
            rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
            1 + (rng as usize) % max
        };
        let mut send_chunks: Vec<&[u8]> = Vec::new();
        let mut rest = &payload[..];
        while !rest.is_empty() {
            let n = next(rest.len().min(977)).min(rest.len());
            let (head, tail) = rest.split_at(n);
            send_chunks.push(head);
            rest = tail;
        }

        let mut out = vec![0u8; total];
        let mut recv_chunks: Vec<IovEntryMut> = Vec::new();
        {
            let mut rest: &mut [u8] = &mut out;
            while !rest.is_empty() {
                let n = next(rest.len().min(661)).min(rest.len());
                let (head, tail) = rest.split_at_mut(n);
                recv_chunks.push(IovEntryMut::from_slice(head));
                rest = tail;
            }
        }

        let rreq = unsafe { b.post_recv(RecvDesc::Iov(recv_chunks), 0, 0).unwrap() };
        let entries: Vec<IovEntry> = send_chunks.iter().map(|c| IovEntry::from_slice(c)).collect();
        let sreq = unsafe { a.post_send(SendDesc::Iov(entries), 1, 0).unwrap() };
        sreq.wait().unwrap();
        rreq.wait().unwrap();
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn protocol_follows_threshold(size in 1usize..200_000) {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let payload = vec![0xA5u8; size];
        let mut out = vec![0u8; size];
        std::thread::scope(|s| {
            s.spawn(|| a.send_bytes(&payload, 1, 0).unwrap());
            s.spawn(|| { b.recv_bytes(&mut out, 0, 0).unwrap(); });
        });
        let stats = fabric.stats();
        if size > fabric.model().rndv_threshold {
            prop_assert_eq!(stats.rendezvous, 1);
        } else {
            prop_assert_eq!(stats.eager, 1);
        }
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn generic_pack_survives_any_fragmentation(
        packed in 1usize..4000,
        frag in 1usize..700,
        region_split in splits(2048),
    ) {
        let model = WireModel { frag_size: frag, ..WireModel::zero_cost() };
        let fabric = Fabric::with_model(2, model);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();

        let header: Vec<u8> = (0..packed).map(|i| (i * 3 % 256) as u8).collect();
        let body: Vec<u8> = (0..2048u32).map(|i| (i % 241) as u8).collect();

        let mut out_header = vec![0u8; packed];
        let mut out_body = vec![0u8; 2048];

        // Receiver scatters the body across the generated split.
        let mut regions = Vec::new();
        {
            let mut rest: &mut [u8] = &mut out_body;
            for len in &region_split {
                if rest.is_empty() { break; }
                let take = (*len).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                regions.push(IovEntryMut::from_slice(head));
                rest = tail;
            }
            if !rest.is_empty() {
                regions.push(IovEntryMut::from_slice(rest));
            }
        }

        struct CollectUnpack(*mut u8, usize);
        unsafe impl Send for CollectUnpack {}
        impl mpicd_fabric::FragmentUnpacker for CollectUnpack {
            fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
                assert!(offset + src.len() <= self.1);
                unsafe {
                    std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
                }
                Ok(())
            }
        }

        let rreq = unsafe {
            b.post_recv(
                RecvDesc::Generic {
                    unpacker: Box::new(CollectUnpack(out_header.as_mut_ptr(), packed)),
                    packed_size: packed,
                    regions,
                },
                0,
                0,
            ).unwrap()
        };

        let hdr = header.clone();
        let sreq = unsafe {
            a.post_send(
                SendDesc::Generic {
                    packer: Box::new(move |off: usize, dst: &mut [u8]| {
                        let n = dst.len().min(hdr.len() - off);
                        dst[..n].copy_from_slice(&hdr[off..off + n]);
                        Ok(n)
                    }),
                    packed_size: packed,
                    regions: vec![IovEntry::from_slice(&body)],
                    inorder: true,
                },
                1,
                0,
            ).unwrap()
        };
        sreq.wait().unwrap();
        rreq.wait().unwrap();
        prop_assert_eq!(out_header, header);
        prop_assert_eq!(out_body, body);
    }

    #[test]
    fn wire_time_monotonic_in_bytes(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let m = WireModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            m.message_time_ns(lo, 1, m.is_rendezvous(lo))
                <= m.message_time_ns(hi, 1, m.is_rendezvous(hi)) + 2.0 * m.latency_ns
        );
    }
}
