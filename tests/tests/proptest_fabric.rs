//! Property-style tests for the fabric, driven by the workspace's seeded
//! xorshift64* PRNG (`mpicd_obs::XorShift64Star`): arbitrary scatter/gather
//! splits on both sides must move the same byte stream; protocol selection
//! must follow the threshold; arbitrary fragment sizes must not change
//! results. Deterministic per seed, so every failure is reproducible.

use mpicd_fabric::{Fabric, IovEntry, IovEntryMut, RecvDesc, SendDesc, WireModel};
use mpicd_obs::XorShift64Star;

/// Split `total` bytes into a pseudo-random list of chunk lengths.
fn splits(rng: &mut XorShift64Star, total: usize, max_chunk: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        let take = rng.range(1, remaining.min(max_chunk) + 1);
        out.push(take);
        remaining -= take;
    }
    out
}

#[test]
fn iov_to_iov_streams_bytes() {
    let frags = [16usize, 64, 1024, 64 * 1024];
    let mut rng = XorShift64Star::new(0x5EED_FAB1);
    for case in 0..48 {
        let total = rng.range(1, 5000);
        let frag = frags[case % frags.len()];
        let model = WireModel {
            frag_size: frag,
            ..WireModel::zero_cost()
        };
        let fabric = Fabric::with_model(2, model);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();

        let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();

        // Pseudo-random contiguous split of the send and recv sides.
        let mut send_chunks: Vec<&[u8]> = Vec::new();
        let mut rest = &payload[..];
        while !rest.is_empty() {
            let n = rng.range(1, rest.len().min(977) + 1);
            let (head, tail) = rest.split_at(n);
            send_chunks.push(head);
            rest = tail;
        }

        let mut out = vec![0u8; total];
        let mut recv_chunks: Vec<IovEntryMut> = Vec::new();
        {
            let mut rest: &mut [u8] = &mut out;
            while !rest.is_empty() {
                let n = rng.range(1, rest.len().min(661) + 1);
                let (head, tail) = rest.split_at_mut(n);
                recv_chunks.push(IovEntryMut::from_slice(head));
                rest = tail;
            }
        }

        let rreq = unsafe { b.post_recv(RecvDesc::Iov(recv_chunks), 0, 0).unwrap() };
        let entries: Vec<IovEntry> = send_chunks
            .iter()
            .map(|c| IovEntry::from_slice(c))
            .collect();
        let sreq = unsafe { a.post_send(SendDesc::Iov(entries), 1, 0).unwrap() };
        sreq.wait().unwrap();
        rreq.wait().unwrap();
        assert_eq!(out, payload, "case {case}: total={total} frag={frag}");
    }
}

#[test]
fn protocol_follows_threshold() {
    let mut rng = XorShift64Star::new(0x7407_0C01);
    let threshold = Fabric::new(2).model().rndv_threshold;
    // Random sizes plus the boundary itself from both sides.
    let mut sizes: Vec<usize> = (0..20).map(|_| rng.range(1, 200_000)).collect();
    sizes.extend([1, threshold - 1, threshold, threshold + 1, 200_000 - 1]);
    for size in sizes {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let payload = vec![0xA5u8; size];
        let mut out = vec![0u8; size];
        std::thread::scope(|s| {
            s.spawn(|| a.send_bytes(&payload, 1, 0).unwrap());
            s.spawn(|| {
                b.recv_bytes(&mut out, 0, 0).unwrap();
            });
        });
        let stats = fabric.stats();
        if size > fabric.model().rndv_threshold {
            assert_eq!(stats.rendezvous, 1, "size={size}");
        } else {
            assert_eq!(stats.eager, 1, "size={size}");
        }
        assert_eq!(out, payload);
    }
}

#[test]
fn generic_pack_survives_any_fragmentation() {
    let mut rng = XorShift64Star::new(0x9E4E_21C0);
    for case in 0..48 {
        let packed = rng.range(1, 4000);
        let frag = rng.range(1, 700);
        let region_split = splits(&mut rng, 2048, 977);
        let model = WireModel {
            frag_size: frag,
            ..WireModel::zero_cost()
        };
        let fabric = Fabric::with_model(2, model);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();

        let header: Vec<u8> = (0..packed).map(|i| (i * 3 % 256) as u8).collect();
        let body: Vec<u8> = (0..2048u32).map(|i| (i % 241) as u8).collect();

        let mut out_header = vec![0u8; packed];
        let mut out_body = vec![0u8; 2048];

        // Receiver scatters the body across the generated split.
        let mut regions = Vec::new();
        {
            let mut rest: &mut [u8] = &mut out_body;
            for len in &region_split {
                if rest.is_empty() {
                    break;
                }
                let take = (*len).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                regions.push(IovEntryMut::from_slice(head));
                rest = tail;
            }
            if !rest.is_empty() {
                regions.push(IovEntryMut::from_slice(rest));
            }
        }

        struct CollectUnpack(*mut u8, usize);
        unsafe impl Send for CollectUnpack {}
        impl mpicd_fabric::FragmentUnpacker for CollectUnpack {
            fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
                assert!(offset + src.len() <= self.1);
                unsafe {
                    std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
                }
                Ok(())
            }
        }

        let rreq = unsafe {
            b.post_recv(
                RecvDesc::Generic {
                    unpacker: Box::new(CollectUnpack(out_header.as_mut_ptr(), packed)),
                    packed_size: packed,
                    regions,
                },
                0,
                0,
            )
            .unwrap()
        };

        let hdr = header.clone();
        let sreq = unsafe {
            a.post_send(
                SendDesc::Generic {
                    packer: Box::new(move |off: usize, dst: &mut [u8]| {
                        let n = dst.len().min(hdr.len() - off);
                        dst[..n].copy_from_slice(&hdr[off..off + n]);
                        Ok(n)
                    }),
                    packed_size: packed,
                    regions: vec![IovEntry::from_slice(&body)],
                    inorder: true,
                },
                1,
                0,
            )
            .unwrap()
        };
        sreq.wait().unwrap();
        rreq.wait().unwrap();
        assert_eq!(
            out_header, header,
            "case {case}: packed={packed} frag={frag}"
        );
        assert_eq!(out_body, body, "case {case}: packed={packed} frag={frag}");
    }
}

#[test]
fn wire_time_monotonic_in_bytes() {
    let m = WireModel::default();
    let mut rng = XorShift64Star::new(0x3173_0411);
    for _ in 0..200 {
        let a = rng.range(1, 1_000_000);
        let b = rng.range(1, 1_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            m.message_time_ns(lo, 1, m.is_rendezvous(lo))
                <= m.message_time_ns(hi, 1, m.is_rendezvous(hi)) + 2.0 * m.latency_ns,
            "lo={lo} hi={hi}"
        );
    }
}
