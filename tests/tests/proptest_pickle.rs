//! Property-style tests for the pickle layer, driven by the workspace's
//! seeded xorshift64* PRNG: arbitrary object graphs roundtrip through both
//! serialization modes, and malformed input errors instead of panicking.

use mpicd_obs::XorShift64Star;
use mpicd_pickle::{dumps, dumps_oob, loads, loads_oob, DType, NdArray, PyObject};

fn dtype(rng: &mut XorShift64Star) -> DType {
    match rng.range(0, 5) {
        0 => DType::U8,
        1 => DType::I32,
        2 => DType::I64,
        3 => DType::F32,
        _ => DType::F64,
    }
}

fn ndarray(rng: &mut XorShift64Star) -> NdArray {
    let dt = dtype(rng);
    let shape: Vec<usize> = (0..rng.range(1, 3)).map(|_| rng.range(0, 5)).collect();
    let n: usize = shape.iter().product::<usize>() * dt.itemsize();
    let data = rng.bytes(n);
    NdArray::new(shape, dt, data)
}

fn ascii_lower(rng: &mut XorShift64Star, min: usize, max: usize) -> String {
    let len = rng.range(min, max + 1);
    (0..len)
        .map(|_| (b'a' + rng.range(0, 26) as u8) as char)
        .collect()
}

fn pyobject(rng: &mut XorShift64Star, depth: u32) -> PyObject {
    // Mix leaves and containers like the old proptest strategy did; at
    // depth 0 only leaves remain.
    if depth == 0 || rng.chance(7, 10) {
        return match rng.range(0, 7) {
            0 => PyObject::None,
            1 => PyObject::Bool(rng.chance(1, 2)),
            2 => PyObject::Int(rng.next_u64() as i64),
            3 => {
                // Finite floats only: NaN breaks equality.
                PyObject::Float((rng.next_f64() - 0.5) * 1e12)
            }
            4 => PyObject::Str(ascii_lower(rng, 0, 12)),
            5 => {
                let len = rng.range(0, 32);
                PyObject::Bytes(rng.bytes(len))
            }
            _ => PyObject::Array(ndarray(rng)),
        };
    }
    match rng.range(0, 3) {
        0 => PyObject::List(
            (0..rng.range(0, 4))
                .map(|_| pyobject(rng, depth - 1))
                .collect(),
        ),
        1 => PyObject::Tuple(
            (0..rng.range(0, 4))
                .map(|_| pyobject(rng, depth - 1))
                .collect(),
        ),
        _ => PyObject::Dict(
            (0..rng.range(0, 3))
                .map(|_| {
                    (
                        PyObject::Str(ascii_lower(rng, 1, 6)),
                        pyobject(rng, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

#[test]
fn inband_roundtrip() {
    let mut rng = XorShift64Star::new(0x81C7_1E01);
    for case in 0..64 {
        let obj = pyobject(&mut rng, 3);
        let stream = dumps(&obj);
        assert_eq!(loads(&stream).unwrap(), obj, "case {case}");
    }
}

#[test]
fn oob_roundtrip() {
    let mut rng = XorShift64Star::new(0x81C7_1E02);
    for case in 0..64 {
        let obj = pyobject(&mut rng, 3);
        let (stream, bufs) = dumps_oob(&obj);
        // The stream never carries buffer payloads (each out-of-band array
        // costs a 4-byte index instead of its data, so empty arrays may make
        // the oob stream marginally longer).
        let payload: usize = obj.buffer_bytes();
        assert!(stream.len() <= dumps(&obj).len() + 4 * obj.array_count());
        assert_eq!(
            stream.len() + payload,
            dumps(&obj).len() + 4 * obj.array_count(),
            "case {case}"
        );
        let received: Vec<Vec<u8>> = bufs.iter().map(|b| b.as_slice().to_vec()).collect();
        let total: usize = received.iter().map(Vec::len).sum();
        assert_eq!(total, payload);
        assert_eq!(loads_oob(&stream, received).unwrap(), obj, "case {case}");
    }
}

#[test]
fn truncation_never_panics() {
    let mut rng = XorShift64Star::new(0x81C7_1E03);
    for _ in 0..64 {
        let obj = pyobject(&mut rng, 2);
        let cut_fraction = rng.next_f64();
        let stream = dumps(&obj);
        if stream.len() <= 1 {
            continue;
        }
        let cut = ((stream.len() as f64) * cut_fraction) as usize;
        if cut >= stream.len() {
            continue;
        }
        // Must be an error (truncated/protocol), never a panic, never Ok
        // with trailing garbage semantics.
        let _ = loads(&stream[..cut]);
    }
}

#[test]
fn corrupted_tag_never_panics() {
    let mut rng = XorShift64Star::new(0x81C7_1E04);
    for _ in 0..64 {
        let obj = pyobject(&mut rng, 2);
        let mut stream = dumps(&obj);
        if stream.is_empty() {
            continue;
        }
        let at = rng.range(0, stream.len());
        stream[at] = rng.next_u64() as u8;
        let _ = loads(&stream); // error or different object; no panic
    }
}

#[test]
fn oob_buffer_count_matches_array_count() {
    let mut rng = XorShift64Star::new(0x81C7_1E05);
    for _ in 0..64 {
        let obj = pyobject(&mut rng, 3);
        let (_, bufs) = dumps_oob(&obj);
        assert_eq!(bufs.len(), obj.array_count());
    }
}
