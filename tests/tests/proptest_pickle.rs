//! Property tests for the pickle layer: arbitrary object graphs roundtrip
//! through both serialization modes, and malformed input errors instead of
//! panicking.

use mpicd_pickle::{dumps, dumps_oob, loads, loads_oob, DType, NdArray, PyObject};
use proptest::prelude::*;

fn dtype() -> impl Strategy<Value = DType> {
    prop_oneof![
        Just(DType::U8),
        Just(DType::I32),
        Just(DType::I64),
        Just(DType::F32),
        Just(DType::F64),
    ]
}

fn ndarray() -> impl Strategy<Value = NdArray> {
    (dtype(), prop::collection::vec(0usize..5, 1..3)).prop_flat_map(|(dt, shape)| {
        let n: usize = shape.iter().product::<usize>() * dt.itemsize();
        prop::collection::vec(any::<u8>(), n..=n)
            .prop_map(move |data| NdArray::new(shape.clone(), dt, data))
    })
}

fn pyobject(depth: u32) -> impl Strategy<Value = PyObject> {
    let leaf = prop_oneof![
        Just(PyObject::None),
        any::<bool>().prop_map(PyObject::Bool),
        any::<i64>().prop_map(PyObject::Int),
        any::<f64>()
            .prop_filter("NaN breaks equality", |f| !f.is_nan())
            .prop_map(PyObject::Float),
        "[a-z]{0,12}".prop_map(PyObject::Str),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(PyObject::Bytes),
        ndarray().prop_map(PyObject::Array),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(PyObject::List),
            prop::collection::vec(inner.clone(), 0..4).prop_map(PyObject::Tuple),
            prop::collection::vec(("[a-z]{1,6}".prop_map(PyObject::Str), inner.clone()), 0..3)
                .prop_map(PyObject::Dict),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inband_roundtrip(obj in pyobject(3)) {
        let stream = dumps(&obj);
        prop_assert_eq!(loads(&stream).unwrap(), obj);
    }

    #[test]
    fn oob_roundtrip(obj in pyobject(3)) {
        let (stream, bufs) = dumps_oob(&obj);
        // The stream never carries buffer payloads (each out-of-band array
        // costs a 4-byte index instead of its data, so empty arrays may make
        // the oob stream marginally longer).
        let payload: usize = obj.buffer_bytes();
        prop_assert!(stream.len() <= dumps(&obj).len() + 4 * obj.array_count());
        prop_assert_eq!(stream.len() + payload, dumps(&obj).len() + 4 * obj.array_count());
        let received: Vec<Vec<u8>> = bufs.iter().map(|b| b.as_slice().to_vec()).collect();
        let total: usize = received.iter().map(Vec::len).sum();
        prop_assert_eq!(total, payload);
        prop_assert_eq!(loads_oob(&stream, received).unwrap(), obj);
    }

    #[test]
    fn truncation_never_panics(obj in pyobject(2), cut_fraction in 0.0f64..1.0) {
        let stream = dumps(&obj);
        if stream.len() <= 1 { return Ok(()); }
        let cut = ((stream.len() as f64) * cut_fraction) as usize;
        if cut >= stream.len() { return Ok(()); }
        // Must be an error (truncated/protocol), never a panic, never Ok
        // with trailing garbage semantics.
        let _ = loads(&stream[..cut]);
    }

    #[test]
    fn corrupted_tag_never_panics(obj in pyobject(2), at_seed in any::<u32>(), val in any::<u8>()) {
        let mut stream = dumps(&obj);
        if stream.is_empty() { return Ok(()); }
        let at = (at_seed as usize) % stream.len();
        stream[at] = val;
        let _ = loads(&stream); // error or different object; no panic
    }

    #[test]
    fn oob_buffer_count_matches_array_count(obj in pyobject(3)) {
        let (_, bufs) = dumps_oob(&obj);
        prop_assert_eq!(bufs.len(), obj.array_count());
    }
}
