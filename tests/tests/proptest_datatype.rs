//! Property tests for the derived-datatype engine: random type trees,
//! random fragmentations, and the merged-vs-convertor equivalence.

use mpicd_datatype::{Datatype, Primitive};
use proptest::prelude::*;

/// Random leaf primitive.
fn prim() -> impl Strategy<Value = Datatype> {
    prop_oneof![
        Just(Datatype::Predefined(Primitive::Byte)),
        Just(Datatype::Predefined(Primitive::Int32)),
        Just(Datatype::Predefined(Primitive::Double)),
    ]
}

/// Random non-negative-lb datatype tree of bounded depth/size.
fn datatype(depth: u32) -> impl Strategy<Value = Datatype> {
    let leaf = prim();
    leaf.prop_recursive(depth, 64, 4, |inner| {
        prop_oneof![
            (1usize..5, inner.clone())
                .prop_map(|(count, child)| Datatype::contiguous(count, child)),
            (1usize..4, 1usize..3, inner.clone()).prop_map(|(count, bl, child)| {
                // Stride ≥ blocklength keeps blocks disjoint and lb = 0.
                let stride = (bl + 1) as isize;
                Datatype::vector(count, bl, stride, child)
            }),
            (1usize..4, inner.clone()).prop_map(|(count, child)| {
                // Disjoint ascending displacements (in child extents).
                let blocks = (0..count).map(|i| (1usize, (i * 2) as isize)).collect();
                Datatype::indexed(blocks, child)
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                // Two fields, second placed past the first's span.
                let off = (a.extent() as isize).max(8);
                Datatype::structure(vec![(1, 0, a), (1, off, b)])
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_roundtrip(t in datatype(3), count in 1usize..4) {
        let c = t.commit().unwrap();
        prop_assume!(c.size() > 0);
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let packed = c.pack_slice(&src, count).unwrap();
        prop_assert_eq!(packed.len(), c.size() * count);

        let mut dst = vec![0u8; span];
        c.unpack_slice(&packed, &mut dst, count).unwrap();
        // Repacking the unpacked buffer reproduces the stream.
        let repacked = c.pack_slice(&dst, count).unwrap();
        prop_assert_eq!(repacked, packed);
    }

    #[test]
    fn convertor_and_merged_commits_agree(t in datatype(3), count in 1usize..3) {
        let merged = t.commit().unwrap();
        let convertor = t.commit_convertor().unwrap();
        prop_assert_eq!(merged.size(), convertor.size());
        prop_assert_eq!(merged.extent(), convertor.extent());
        if merged.size() == 0 { return Ok(()); }
        let span = merged.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i * 7 % 256) as u8).collect();
        prop_assert_eq!(
            merged.pack_slice(&src, count).unwrap(),
            convertor.pack_slice(&src, count).unwrap()
        );
    }

    #[test]
    fn segmented_pack_reassembles(t in datatype(3), frag in 1usize..40) {
        let c = t.commit().unwrap();
        prop_assume!(c.size() > 0);
        let count = 3usize;
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 255) as u8).collect();
        let full = c.pack_slice(&src, count).unwrap();

        let mut acc = Vec::new();
        let mut off = 0usize;
        loop {
            let mut buf = vec![0u8; frag];
            let n = unsafe { c.pack_segment(src.as_ptr(), count, off, &mut buf) };
            if n == 0 { break; }
            acc.extend_from_slice(&buf[..n]);
            off += n;
        }
        prop_assert_eq!(acc, full);
    }

    #[test]
    fn out_of_order_unpack_segments(t in datatype(2), seed in 0u64..1000) {
        let c = t.commit().unwrap();
        prop_assume!(c.size() > 0);
        let count = 2usize;
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 250) as u8).collect();
        let packed = c.pack_slice(&src, count).unwrap();

        // Split the packed stream at a pseudo-random point; deliver the
        // second half before the first.
        let cut = (seed as usize) % (packed.len().max(1));
        let mut dst = vec![0u8; span];
        unsafe {
            c.unpack_segment(dst.as_mut_ptr(), count, cut, &packed[cut..]);
            c.unpack_segment(dst.as_mut_ptr(), count, 0, &packed[..cut]);
        }
        prop_assert_eq!(c.pack_slice(&dst, count).unwrap(), packed);
    }

    #[test]
    fn extent_is_at_least_size_for_nonneg_lb(t in datatype(3)) {
        // All generated types have lb == 0, so the span from 0 to ub must
        // cover every data byte.
        prop_assert!(t.extent() >= t.size());
    }

    #[test]
    fn flatten_count_covers_exactly_size_bytes(t in datatype(2), count in 1usize..4) {
        let c = t.commit().unwrap();
        let total: usize = c.flatten_count(count).iter().map(|(_, l)| l).sum();
        prop_assert_eq!(total, c.size() * count);
    }

    #[test]
    fn marshal_roundtrip_preserves_semantics(t in datatype(3)) {
        use mpicd_datatype::{equivalent, marshal, unmarshal};
        let bytes = marshal(&t);
        let back = unmarshal(&bytes).unwrap();
        prop_assert!(equivalent(&t, &back));
        prop_assert_eq!(t.extent(), back.extent());
        // Canonical: re-marshalling is byte-identical.
        prop_assert_eq!(marshal(&back), bytes);
    }

    #[test]
    fn marshal_truncation_never_panics(t in datatype(2), frac in 0.0f64..1.0) {
        use mpicd_datatype::{marshal, unmarshal};
        let bytes = marshal(&t);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(unmarshal(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn signature_is_stable_under_marshal(t in datatype(2)) {
        use mpicd_datatype::{marshal, signature, unmarshal};
        let back = unmarshal(&marshal(&t)).unwrap();
        prop_assert_eq!(signature(&t), signature(&back));
    }
}
