//! Property-style tests for the derived-datatype engine, driven by the
//! workspace's seeded xorshift64* PRNG: random type trees, random
//! fragmentations, and the merged-vs-convertor equivalence.

use mpicd_datatype::{Datatype, Primitive};
use mpicd_obs::XorShift64Star;

/// Random leaf primitive.
fn prim(rng: &mut XorShift64Star) -> Datatype {
    match rng.range(0, 3) {
        0 => Datatype::Predefined(Primitive::Byte),
        1 => Datatype::Predefined(Primitive::Int32),
        _ => Datatype::Predefined(Primitive::Double),
    }
}

/// Random non-negative-lb datatype tree of bounded depth. Mirrors the
/// constructor mix the old proptest strategy generated: contiguous,
/// disjoint vector, disjoint ascending indexed, and two-field struct.
fn datatype(rng: &mut XorShift64Star, depth: u32) -> Datatype {
    if depth == 0 || rng.chance(1, 4) {
        return prim(rng);
    }
    match rng.range(0, 4) {
        0 => {
            let count = rng.range(1, 5);
            Datatype::contiguous(count, datatype(rng, depth - 1))
        }
        1 => {
            let count = rng.range(1, 4);
            let bl = rng.range(1, 3);
            // Stride ≥ blocklength keeps blocks disjoint and lb = 0.
            let stride = (bl + 1) as isize;
            Datatype::vector(count, bl, stride, datatype(rng, depth - 1))
        }
        2 => {
            let count = rng.range(1, 4);
            // Disjoint ascending displacements (in child extents).
            let blocks = (0..count).map(|i| (1usize, (i * 2) as isize)).collect();
            Datatype::indexed(blocks, datatype(rng, depth - 1))
        }
        _ => {
            let a = datatype(rng, depth - 1);
            let b = datatype(rng, depth - 1);
            // Two fields, second placed past the first's span.
            let off = (a.extent() as isize).max(8);
            Datatype::structure(vec![(1, 0, a), (1, off, b)])
        }
    }
}

#[test]
fn pack_unpack_roundtrip() {
    let mut rng = XorShift64Star::new(0xDA7A_0001);
    for case in 0..64 {
        let t = datatype(&mut rng, 3);
        let count = rng.range(1, 4);
        let c = t.commit().unwrap();
        if c.size() == 0 {
            continue;
        }
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let packed = c.pack_slice(&src, count).unwrap();
        assert_eq!(packed.len(), c.size() * count);

        let mut dst = vec![0u8; span];
        c.unpack_slice(&packed, &mut dst, count).unwrap();
        // Repacking the unpacked buffer reproduces the stream.
        let repacked = c.pack_slice(&dst, count).unwrap();
        assert_eq!(repacked, packed, "case {case}: {t:?}");
    }
}

#[test]
fn convertor_and_merged_commits_agree() {
    let mut rng = XorShift64Star::new(0xDA7A_0002);
    for case in 0..64 {
        let t = datatype(&mut rng, 3);
        let count = rng.range(1, 3);
        let merged = t.commit().unwrap();
        let convertor = t.commit_convertor().unwrap();
        assert_eq!(merged.size(), convertor.size());
        assert_eq!(merged.extent(), convertor.extent());
        if merged.size() == 0 {
            continue;
        }
        let span = merged.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i * 7 % 256) as u8).collect();
        assert_eq!(
            merged.pack_slice(&src, count).unwrap(),
            convertor.pack_slice(&src, count).unwrap(),
            "case {case}: {t:?}"
        );
    }
}

#[test]
fn segmented_pack_reassembles() {
    let mut rng = XorShift64Star::new(0xDA7A_0003);
    for case in 0..64 {
        let t = datatype(&mut rng, 3);
        let frag = rng.range(1, 40);
        let c = t.commit().unwrap();
        if c.size() == 0 {
            continue;
        }
        let count = 3usize;
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 255) as u8).collect();
        let full = c.pack_slice(&src, count).unwrap();

        let mut acc = Vec::new();
        let mut off = 0usize;
        loop {
            let mut buf = vec![0u8; frag];
            let n = unsafe { c.pack_segment(src.as_ptr(), count, off, &mut buf) };
            if n == 0 {
                break;
            }
            acc.extend_from_slice(&buf[..n]);
            off += n;
        }
        assert_eq!(acc, full, "case {case}: frag={frag} {t:?}");
    }
}

#[test]
fn out_of_order_unpack_segments() {
    let mut rng = XorShift64Star::new(0xDA7A_0004);
    for case in 0..64 {
        let t = datatype(&mut rng, 2);
        let seed = rng.range(0, 1000);
        let c = t.commit().unwrap();
        if c.size() == 0 {
            continue;
        }
        let count = 2usize;
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 250) as u8).collect();
        let packed = c.pack_slice(&src, count).unwrap();

        // Split the packed stream at a pseudo-random point; deliver the
        // second half before the first.
        let cut = seed % packed.len().max(1);
        let mut dst = vec![0u8; span];
        unsafe {
            c.unpack_segment(dst.as_mut_ptr(), count, cut, &packed[cut..]);
            c.unpack_segment(dst.as_mut_ptr(), count, 0, &packed[..cut]);
        }
        assert_eq!(
            c.pack_slice(&dst, count).unwrap(),
            packed,
            "case {case}: cut={cut}"
        );
    }
}

#[test]
fn extent_is_at_least_size_for_nonneg_lb() {
    let mut rng = XorShift64Star::new(0xDA7A_0005);
    for _ in 0..64 {
        // All generated types have lb == 0, so the span from 0 to ub must
        // cover every data byte.
        let t = datatype(&mut rng, 3);
        assert!(t.extent() >= t.size(), "{t:?}");
    }
}

#[test]
fn flatten_count_covers_exactly_size_bytes() {
    let mut rng = XorShift64Star::new(0xDA7A_0006);
    for _ in 0..64 {
        let t = datatype(&mut rng, 2);
        let count = rng.range(1, 4);
        let c = t.commit().unwrap();
        let total: usize = c.flatten_count(count).iter().map(|(_, l)| l).sum();
        assert_eq!(total, c.size() * count, "{t:?}");
    }
}

#[test]
fn marshal_roundtrip_preserves_semantics() {
    use mpicd_datatype::{equivalent, marshal, unmarshal};
    let mut rng = XorShift64Star::new(0xDA7A_0007);
    for _ in 0..64 {
        let t = datatype(&mut rng, 3);
        let bytes = marshal(&t);
        let back = unmarshal(&bytes).unwrap();
        assert!(equivalent(&t, &back), "{t:?}");
        assert_eq!(t.extent(), back.extent());
        // Canonical: re-marshalling is byte-identical.
        assert_eq!(marshal(&back), bytes);
    }
}

#[test]
fn marshal_truncation_never_panics() {
    use mpicd_datatype::{marshal, unmarshal};
    let mut rng = XorShift64Star::new(0xDA7A_0008);
    for _ in 0..64 {
        let t = datatype(&mut rng, 2);
        let frac = rng.next_f64();
        let bytes = marshal(&t);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            assert!(
                unmarshal(&bytes[..cut]).is_err(),
                "cut={cut} of {}",
                bytes.len()
            );
        }
    }
}

#[test]
fn signature_is_stable_under_marshal() {
    use mpicd_datatype::{marshal, signature, unmarshal};
    let mut rng = XorShift64Star::new(0xDA7A_0009);
    for _ in 0..64 {
        let t = datatype(&mut rng, 2);
        let back = unmarshal(&marshal(&t)).unwrap();
        assert_eq!(signature(&t), signature(&back), "{t:?}");
    }
}
