//! Cross-crate integration: every layer of the reproduction working
//! together over one fabric.

use mpicd::types::{StructSimple, StructVec};
use mpicd::World;
use mpicd_ddtbench::{make, BENCHMARKS};
use mpicd_pickle::{recv_pickle_oob_cdt, send_pickle_oob_cdt, workload};
use std::sync::Arc;

#[test]
fn mixed_traffic_on_one_fabric() {
    // Rust structs, a DDTBench pattern, and a pickle object all flying
    // between the same pair of ranks with distinct tags.
    let world = World::new(2);
    let (c0, c1) = world.pair();

    let structs: Vec<StructSimple> = (0..500).map(StructSimple::generate).collect();
    let svec: Vec<StructVec> = (0..2).map(StructVec::generate).collect();
    let pyobj = workload::complex_object(256 * 1024);

    let mut structs_rx = vec![StructSimple::default(); 500];
    let mut svec_rx = vec![StructVec::default(); 2];

    std::thread::scope(|s| {
        let pyref = &pyobj;
        s.spawn(|| {
            c0.send(&structs, 1, 10).unwrap();
            c0.send(&svec, 1, 11).unwrap();
            send_pickle_oob_cdt(&c0, pyref, 1, 12).unwrap();
        });
        let got = s.spawn(|| {
            let a = c1.recv(&mut structs_rx, 0, 10).unwrap();
            let b = c1.recv(&mut svec_rx, 0, 11).unwrap();
            let obj = recv_pickle_oob_cdt(&c1, 0, 12).unwrap();
            (a, b, obj)
        });
        let (_, _, obj) = got.join().unwrap();
        assert_eq!(obj, pyobj);
    });
    assert_eq!(structs_rx, structs);
    assert_eq!(svec_rx, svec);
}

#[test]
fn every_ddtbench_pattern_roundtrips_every_method_single_threaded() {
    for name in BENCHMARKS {
        let sender = make(name, 8 * 1024);
        let expect = sender.checksum();

        // Custom pack path.
        {
            let world = World::new(2);
            let (a, b) = world.pair();
            let mut receiver = make(name, 8 * 1024);
            receiver.clear();
            let sctx = sender.custom_pack_ctx();
            let mut rctx = receiver.custom_unpack_ctx();
            mpicd::transfer_custom(&a, &b, sctx, &mut *rctx, 0).unwrap();
            drop(rctx);
            assert_eq!(receiver.checksum(), expect, "{name} custom");
        }

        // Derived datatype path.
        {
            let world = World::new(2);
            let (a, b) = world.pair();
            let mut receiver = make(name, 8 * 1024);
            receiver.clear();
            let ty = sender.committed();
            mpicd::transfer_typed(&a, &b, sender.base(), receiver.base_mut(), 1, &ty, 0).unwrap();
            assert_eq!(receiver.checksum(), expect, "{name} typed");
        }
    }
}

#[test]
fn four_rank_all_to_one_gather_pattern() {
    // Rank 0 gathers double-vecs from everyone, any-source.
    let world = World::new(4);
    let comms = world.comms();
    std::thread::scope(|s| {
        for comm in &comms[1..] {
            s.spawn(move || {
                let payload: Vec<Vec<i32>> =
                    vec![vec![comm.rank() as i32; 64 + comm.rank()], vec![7; 10]];
                comm.send(&payload, 0, 77).unwrap();
            });
        }
        s.spawn(|| {
            let c0 = &comms[0];
            let mut seen = vec![false; 4];
            for _ in 0..3 {
                // Probe to learn who's next, then receive their shape.
                let st = c0.probe(mpicd::fabric::ANY_SOURCE, 77);
                let src = st.source;
                let mut buf: Vec<Vec<i32>> = vec![vec![0; 64 + src], vec![0; 10]];
                c0.recv(&mut buf, src as i32, 77).unwrap();
                assert_eq!(buf[0], vec![src as i32; 64 + src]);
                seen[src] = true;
            }
            assert_eq!(seen, vec![false, true, true, true]);
        });
    });
}

#[test]
fn wire_statistics_are_consistent() {
    let world = World::new(2);
    let (c0, c1) = world.pair();
    let data: Vec<StructVec> = (0..3).map(StructVec::generate).collect();
    let mut rx = vec![StructVec::default(); 3];
    mpicd::transfer(&c0, &c1, &data, &mut rx, 0).unwrap();
    let stats = world.fabric().stats();
    assert_eq!(stats.messages, 1);
    assert_eq!(stats.bytes, 3 * (20 + 8192));
    assert_eq!(stats.regions, 4, "1 packed + 3 data regions");
    assert_eq!(
        world.fabric().ledger().messages(),
        1,
        "ledger and stats agree"
    );
}

#[test]
fn derived_and_custom_produce_identical_wire_bytes() {
    // The same struct-simple payload via both engines lands identically.
    let send: Vec<StructSimple> = (0..100).map(StructSimple::generate).collect();
    let ty = Arc::new(StructSimple::datatype().commit().unwrap());
    let packed_typed = ty
        .pack_slice(mpicd::types::as_bytes(&send), send.len())
        .unwrap();
    let packed_manual = mpicd::types::pack_struct_simple(&send);
    assert_eq!(packed_typed, packed_manual);
}
