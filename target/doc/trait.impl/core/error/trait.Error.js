(function() {
    const implementors = Object.fromEntries([["mpicd",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mpicd/error/enum.Error.html\" title=\"enum mpicd::error::Error\">Error</a>",0]]],["mpicd_datatype",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mpicd_datatype/error/enum.DatatypeError.html\" title=\"enum mpicd_datatype::error::DatatypeError\">DatatypeError</a>",0]]],["mpicd_fabric",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mpicd_fabric/error/enum.FabricError.html\" title=\"enum mpicd_fabric::error::FabricError\">FabricError</a>",0]]],["mpicd_pickle",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mpicd_pickle/error/enum.PickleError.html\" title=\"enum mpicd_pickle::error::PickleError\">PickleError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[260,312,300,300]}