(function() {
    const implementors = Object.fromEntries([["mpicd_datatype",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"mpicd_datatype/primitive/enum.Primitive.html\" title=\"enum mpicd_datatype::primitive::Primitive\">Primitive</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[302]}