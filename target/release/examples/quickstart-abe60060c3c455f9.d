/root/repo/target/release/examples/quickstart-abe60060c3c455f9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-abe60060c3c455f9: examples/quickstart.rs

examples/quickstart.rs:
