/root/repo/target/release/examples/capi_demo-531b02b04480a4d0.d: examples/capi_demo.rs

/root/repo/target/release/examples/capi_demo-531b02b04480a4d0: examples/capi_demo.rs

examples/capi_demo.rs:
