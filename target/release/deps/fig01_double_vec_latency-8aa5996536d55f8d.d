/root/repo/target/release/deps/fig01_double_vec_latency-8aa5996536d55f8d.d: crates/bench/src/bin/fig01_double_vec_latency.rs

/root/repo/target/release/deps/fig01_double_vec_latency-8aa5996536d55f8d: crates/bench/src/bin/fig01_double_vec_latency.rs

crates/bench/src/bin/fig01_double_vec_latency.rs:
