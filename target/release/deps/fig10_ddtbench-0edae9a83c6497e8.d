/root/repo/target/release/deps/fig10_ddtbench-0edae9a83c6497e8.d: crates/bench/src/bin/fig10_ddtbench.rs

/root/repo/target/release/deps/fig10_ddtbench-0edae9a83c6497e8: crates/bench/src/bin/fig10_ddtbench.rs

crates/bench/src/bin/fig10_ddtbench.rs:
