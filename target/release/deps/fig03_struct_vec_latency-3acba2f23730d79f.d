/root/repo/target/release/deps/fig03_struct_vec_latency-3acba2f23730d79f.d: crates/bench/src/bin/fig03_struct_vec_latency.rs

/root/repo/target/release/deps/fig03_struct_vec_latency-3acba2f23730d79f: crates/bench/src/bin/fig03_struct_vec_latency.rs

crates/bench/src/bin/fig03_struct_vec_latency.rs:
