/root/repo/target/release/deps/fig05_struct_simple_latency-cd87022197d0d0a8.d: crates/bench/src/bin/fig05_struct_simple_latency.rs

/root/repo/target/release/deps/fig05_struct_simple_latency-cd87022197d0d0a8: crates/bench/src/bin/fig05_struct_simple_latency.rs

crates/bench/src/bin/fig05_struct_simple_latency.rs:
