/root/repo/target/release/deps/mpicd_ddtbench-199520f95c78b0ad.d: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

/root/repo/target/release/deps/libmpicd_ddtbench-199520f95c78b0ad.rlib: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

/root/repo/target/release/deps/libmpicd_ddtbench-199520f95c78b0ad.rmeta: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

crates/ddtbench/src/lib.rs:
crates/ddtbench/src/custom.rs:
crates/ddtbench/src/lammps.rs:
crates/ddtbench/src/milc.rs:
crates/ddtbench/src/nas_lu.rs:
crates/ddtbench/src/nas_mg.rs:
crates/ddtbench/src/nestpat.rs:
crates/ddtbench/src/pattern.rs:
crates/ddtbench/src/wrf.rs:
