/root/repo/target/release/deps/fig02_double_vec_bw-d9bc62a8ef19ea32.d: crates/bench/src/bin/fig02_double_vec_bw.rs

/root/repo/target/release/deps/fig02_double_vec_bw-d9bc62a8ef19ea32: crates/bench/src/bin/fig02_double_vec_bw.rs

crates/bench/src/bin/fig02_double_vec_bw.rs:
