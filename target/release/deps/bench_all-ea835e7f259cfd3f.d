/root/repo/target/release/deps/bench_all-ea835e7f259cfd3f.d: crates/bench/src/bin/bench_all.rs

/root/repo/target/release/deps/bench_all-ea835e7f259cfd3f: crates/bench/src/bin/bench_all.rs

crates/bench/src/bin/bench_all.rs:
