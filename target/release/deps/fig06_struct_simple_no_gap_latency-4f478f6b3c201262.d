/root/repo/target/release/deps/fig06_struct_simple_no_gap_latency-4f478f6b3c201262.d: crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs

/root/repo/target/release/deps/fig06_struct_simple_no_gap_latency-4f478f6b3c201262: crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs

crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs:
