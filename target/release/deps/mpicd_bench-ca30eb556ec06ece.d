/root/repo/target/release/deps/mpicd_bench-ca30eb556ec06ece.d: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmpicd_bench-ca30eb556ec06ece.rlib: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmpicd_bench-ca30eb556ec06ece.rmeta: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ddt.rs:
crates/bench/src/harness.rs:
crates/bench/src/methods.rs:
crates/bench/src/phase.rs:
crates/bench/src/pickle_run.rs:
crates/bench/src/report.rs:
