/root/repo/target/release/deps/fig04_struct_vec_bw-307e9e4afe2eee45.d: crates/bench/src/bin/fig04_struct_vec_bw.rs

/root/repo/target/release/deps/fig04_struct_vec_bw-307e9e4afe2eee45: crates/bench/src/bin/fig04_struct_vec_bw.rs

crates/bench/src/bin/fig04_struct_vec_bw.rs:
