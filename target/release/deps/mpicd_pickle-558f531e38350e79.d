/root/repo/target/release/deps/mpicd_pickle-558f531e38350e79.d: crates/pickle/src/lib.rs crates/pickle/src/de.rs crates/pickle/src/error.rs crates/pickle/src/object.rs crates/pickle/src/ser.rs crates/pickle/src/transfer.rs crates/pickle/src/workload.rs

/root/repo/target/release/deps/libmpicd_pickle-558f531e38350e79.rlib: crates/pickle/src/lib.rs crates/pickle/src/de.rs crates/pickle/src/error.rs crates/pickle/src/object.rs crates/pickle/src/ser.rs crates/pickle/src/transfer.rs crates/pickle/src/workload.rs

/root/repo/target/release/deps/libmpicd_pickle-558f531e38350e79.rmeta: crates/pickle/src/lib.rs crates/pickle/src/de.rs crates/pickle/src/error.rs crates/pickle/src/object.rs crates/pickle/src/ser.rs crates/pickle/src/transfer.rs crates/pickle/src/workload.rs

crates/pickle/src/lib.rs:
crates/pickle/src/de.rs:
crates/pickle/src/error.rs:
crates/pickle/src/object.rs:
crates/pickle/src/ser.rs:
crates/pickle/src/transfer.rs:
crates/pickle/src/workload.rs:
