/root/repo/target/release/deps/mpicd_xtests-5c444b541c1147fa.d: tests/src/lib.rs

/root/repo/target/release/deps/libmpicd_xtests-5c444b541c1147fa.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libmpicd_xtests-5c444b541c1147fa.rmeta: tests/src/lib.rs

tests/src/lib.rs:
