/root/repo/target/release/deps/mpicd_fabric-497fa433bee97ca6.d: crates/fabric/src/lib.rs crates/fabric/src/clock.rs crates/fabric/src/config.rs crates/fabric/src/error.rs crates/fabric/src/fabric.rs crates/fabric/src/matching.rs crates/fabric/src/payload.rs crates/fabric/src/request.rs crates/fabric/src/stats.rs crates/fabric/src/transfer.rs

/root/repo/target/release/deps/libmpicd_fabric-497fa433bee97ca6.rlib: crates/fabric/src/lib.rs crates/fabric/src/clock.rs crates/fabric/src/config.rs crates/fabric/src/error.rs crates/fabric/src/fabric.rs crates/fabric/src/matching.rs crates/fabric/src/payload.rs crates/fabric/src/request.rs crates/fabric/src/stats.rs crates/fabric/src/transfer.rs

/root/repo/target/release/deps/libmpicd_fabric-497fa433bee97ca6.rmeta: crates/fabric/src/lib.rs crates/fabric/src/clock.rs crates/fabric/src/config.rs crates/fabric/src/error.rs crates/fabric/src/fabric.rs crates/fabric/src/matching.rs crates/fabric/src/payload.rs crates/fabric/src/request.rs crates/fabric/src/stats.rs crates/fabric/src/transfer.rs

crates/fabric/src/lib.rs:
crates/fabric/src/clock.rs:
crates/fabric/src/config.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/matching.rs:
crates/fabric/src/payload.rs:
crates/fabric/src/request.rs:
crates/fabric/src/stats.rs:
crates/fabric/src/transfer.rs:
