/root/repo/target/release/deps/mpicd_examples-6e0143b99d880664.d: examples/lib.rs

/root/repo/target/release/deps/libmpicd_examples-6e0143b99d880664.rlib: examples/lib.rs

/root/repo/target/release/deps/libmpicd_examples-6e0143b99d880664.rmeta: examples/lib.rs

examples/lib.rs:
