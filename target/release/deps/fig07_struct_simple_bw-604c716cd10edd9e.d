/root/repo/target/release/deps/fig07_struct_simple_bw-604c716cd10edd9e.d: crates/bench/src/bin/fig07_struct_simple_bw.rs

/root/repo/target/release/deps/fig07_struct_simple_bw-604c716cd10edd9e: crates/bench/src/bin/fig07_struct_simple_bw.rs

crates/bench/src/bin/fig07_struct_simple_bw.rs:
