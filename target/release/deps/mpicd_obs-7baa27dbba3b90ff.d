/root/repo/target/release/deps/mpicd_obs-7baa27dbba3b90ff.d: crates/obs/src/lib.rs crates/obs/src/config.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sync.rs crates/obs/src/time.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libmpicd_obs-7baa27dbba3b90ff.rlib: crates/obs/src/lib.rs crates/obs/src/config.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sync.rs crates/obs/src/time.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libmpicd_obs-7baa27dbba3b90ff.rmeta: crates/obs/src/lib.rs crates/obs/src/config.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sync.rs crates/obs/src/time.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/config.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/rng.rs:
crates/obs/src/sync.rs:
crates/obs/src/time.rs:
crates/obs/src/trace.rs:
