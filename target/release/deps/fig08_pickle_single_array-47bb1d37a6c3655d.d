/root/repo/target/release/deps/fig08_pickle_single_array-47bb1d37a6c3655d.d: crates/bench/src/bin/fig08_pickle_single_array.rs

/root/repo/target/release/deps/fig08_pickle_single_array-47bb1d37a6c3655d: crates/bench/src/bin/fig08_pickle_single_array.rs

crates/bench/src/bin/fig08_pickle_single_array.rs:
