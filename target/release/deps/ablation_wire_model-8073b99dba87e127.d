/root/repo/target/release/deps/ablation_wire_model-8073b99dba87e127.d: crates/bench/src/bin/ablation_wire_model.rs

/root/repo/target/release/deps/ablation_wire_model-8073b99dba87e127: crates/bench/src/bin/ablation_wire_model.rs

crates/bench/src/bin/ablation_wire_model.rs:
