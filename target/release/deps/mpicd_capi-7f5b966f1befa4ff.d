/root/repo/target/release/deps/mpicd_capi-7f5b966f1befa4ff.d: crates/capi/src/lib.rs crates/capi/src/adapter.rs crates/capi/src/ctypes.rs crates/capi/src/datatype_c.rs crates/capi/src/handles.rs crates/capi/src/pt2pt.rs

/root/repo/target/release/deps/libmpicd_capi-7f5b966f1befa4ff.rlib: crates/capi/src/lib.rs crates/capi/src/adapter.rs crates/capi/src/ctypes.rs crates/capi/src/datatype_c.rs crates/capi/src/handles.rs crates/capi/src/pt2pt.rs

/root/repo/target/release/deps/libmpicd_capi-7f5b966f1befa4ff.rmeta: crates/capi/src/lib.rs crates/capi/src/adapter.rs crates/capi/src/ctypes.rs crates/capi/src/datatype_c.rs crates/capi/src/handles.rs crates/capi/src/pt2pt.rs

crates/capi/src/lib.rs:
crates/capi/src/adapter.rs:
crates/capi/src/ctypes.rs:
crates/capi/src/datatype_c.rs:
crates/capi/src/handles.rs:
crates/capi/src/pt2pt.rs:
