/root/repo/target/release/deps/fig09_pickle_complex_object-94577e088efb49a7.d: crates/bench/src/bin/fig09_pickle_complex_object.rs

/root/repo/target/release/deps/fig09_pickle_complex_object-94577e088efb49a7: crates/bench/src/bin/fig09_pickle_complex_object.rs

crates/bench/src/bin/fig09_pickle_complex_object.rs:
