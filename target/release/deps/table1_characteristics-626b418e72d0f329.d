/root/repo/target/release/deps/table1_characteristics-626b418e72d0f329.d: crates/bench/src/bin/table1_characteristics.rs

/root/repo/target/release/deps/table1_characteristics-626b418e72d0f329: crates/bench/src/bin/table1_characteristics.rs

crates/bench/src/bin/table1_characteristics.rs:
