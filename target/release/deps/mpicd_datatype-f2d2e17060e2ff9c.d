/root/repo/target/release/deps/mpicd_datatype-f2d2e17060e2ff9c.d: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

/root/repo/target/release/deps/libmpicd_datatype-f2d2e17060e2ff9c.rlib: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

/root/repo/target/release/deps/libmpicd_datatype-f2d2e17060e2ff9c.rmeta: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/committed.rs:
crates/datatype/src/engine.rs:
crates/datatype/src/equivalence.rs:
crates/datatype/src/error.rs:
crates/datatype/src/marshal.rs:
crates/datatype/src/primitive.rs:
crates/datatype/src/typ.rs:
