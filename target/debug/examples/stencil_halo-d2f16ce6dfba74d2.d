/root/repo/target/debug/examples/stencil_halo-d2f16ce6dfba74d2.d: examples/stencil_halo.rs

/root/repo/target/debug/examples/stencil_halo-d2f16ce6dfba74d2: examples/stencil_halo.rs

examples/stencil_halo.rs:
