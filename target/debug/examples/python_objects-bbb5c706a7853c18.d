/root/repo/target/debug/examples/python_objects-bbb5c706a7853c18.d: examples/python_objects.rs

/root/repo/target/debug/examples/python_objects-bbb5c706a7853c18: examples/python_objects.rs

examples/python_objects.rs:
