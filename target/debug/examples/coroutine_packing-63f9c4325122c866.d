/root/repo/target/debug/examples/coroutine_packing-63f9c4325122c866.d: examples/coroutine_packing.rs

/root/repo/target/debug/examples/coroutine_packing-63f9c4325122c866: examples/coroutine_packing.rs

examples/coroutine_packing.rs:
