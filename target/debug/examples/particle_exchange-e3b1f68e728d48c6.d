/root/repo/target/debug/examples/particle_exchange-e3b1f68e728d48c6.d: examples/particle_exchange.rs

/root/repo/target/debug/examples/particle_exchange-e3b1f68e728d48c6: examples/particle_exchange.rs

examples/particle_exchange.rs:
