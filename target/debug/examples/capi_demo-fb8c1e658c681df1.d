/root/repo/target/debug/examples/capi_demo-fb8c1e658c681df1.d: examples/capi_demo.rs

/root/repo/target/debug/examples/capi_demo-fb8c1e658c681df1: examples/capi_demo.rs

examples/capi_demo.rs:
