/root/repo/target/debug/examples/quickstart-c0e82991b47ce486.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c0e82991b47ce486: examples/quickstart.rs

examples/quickstart.rs:
