/root/repo/target/debug/deps/fig06_struct_simple_no_gap_latency-614858b3ff97bed3.d: crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs

/root/repo/target/debug/deps/fig06_struct_simple_no_gap_latency-614858b3ff97bed3: crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs

crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs:
