/root/repo/target/debug/deps/ordering-c73e1bdedf0b0685.d: tests/tests/ordering.rs

/root/repo/target/debug/deps/ordering-c73e1bdedf0b0685: tests/tests/ordering.rs

tests/tests/ordering.rs:
