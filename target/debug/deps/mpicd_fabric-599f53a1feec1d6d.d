/root/repo/target/debug/deps/mpicd_fabric-599f53a1feec1d6d.d: crates/fabric/src/lib.rs crates/fabric/src/clock.rs crates/fabric/src/config.rs crates/fabric/src/error.rs crates/fabric/src/fabric.rs crates/fabric/src/matching.rs crates/fabric/src/payload.rs crates/fabric/src/request.rs crates/fabric/src/stats.rs crates/fabric/src/transfer.rs

/root/repo/target/debug/deps/libmpicd_fabric-599f53a1feec1d6d.rmeta: crates/fabric/src/lib.rs crates/fabric/src/clock.rs crates/fabric/src/config.rs crates/fabric/src/error.rs crates/fabric/src/fabric.rs crates/fabric/src/matching.rs crates/fabric/src/payload.rs crates/fabric/src/request.rs crates/fabric/src/stats.rs crates/fabric/src/transfer.rs

crates/fabric/src/lib.rs:
crates/fabric/src/clock.rs:
crates/fabric/src/config.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/matching.rs:
crates/fabric/src/payload.rs:
crates/fabric/src/request.rs:
crates/fabric/src/stats.rs:
crates/fabric/src/transfer.rs:
