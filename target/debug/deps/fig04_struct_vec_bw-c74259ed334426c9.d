/root/repo/target/debug/deps/fig04_struct_vec_bw-c74259ed334426c9.d: crates/bench/src/bin/fig04_struct_vec_bw.rs

/root/repo/target/debug/deps/fig04_struct_vec_bw-c74259ed334426c9: crates/bench/src/bin/fig04_struct_vec_bw.rs

crates/bench/src/bin/fig04_struct_vec_bw.rs:
