/root/repo/target/debug/deps/table1_characteristics-674df4a12fd64319.d: crates/bench/src/bin/table1_characteristics.rs

/root/repo/target/debug/deps/table1_characteristics-674df4a12fd64319: crates/bench/src/bin/table1_characteristics.rs

crates/bench/src/bin/table1_characteristics.rs:
