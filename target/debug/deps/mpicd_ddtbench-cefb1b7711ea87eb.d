/root/repo/target/debug/deps/mpicd_ddtbench-cefb1b7711ea87eb.d: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

/root/repo/target/debug/deps/libmpicd_ddtbench-cefb1b7711ea87eb.rmeta: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

crates/ddtbench/src/lib.rs:
crates/ddtbench/src/custom.rs:
crates/ddtbench/src/lammps.rs:
crates/ddtbench/src/milc.rs:
crates/ddtbench/src/nas_lu.rs:
crates/ddtbench/src/nas_mg.rs:
crates/ddtbench/src/nestpat.rs:
crates/ddtbench/src/pattern.rs:
crates/ddtbench/src/wrf.rs:
