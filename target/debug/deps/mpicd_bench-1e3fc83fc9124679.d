/root/repo/target/debug/deps/mpicd_bench-1e3fc83fc9124679.d: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpicd_bench-1e3fc83fc9124679.rmeta: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ddt.rs:
crates/bench/src/harness.rs:
crates/bench/src/methods.rs:
crates/bench/src/phase.rs:
crates/bench/src/pickle_run.rs:
crates/bench/src/report.rs:
