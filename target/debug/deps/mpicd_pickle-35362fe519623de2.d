/root/repo/target/debug/deps/mpicd_pickle-35362fe519623de2.d: crates/pickle/src/lib.rs crates/pickle/src/de.rs crates/pickle/src/error.rs crates/pickle/src/object.rs crates/pickle/src/ser.rs crates/pickle/src/transfer.rs crates/pickle/src/workload.rs

/root/repo/target/debug/deps/mpicd_pickle-35362fe519623de2: crates/pickle/src/lib.rs crates/pickle/src/de.rs crates/pickle/src/error.rs crates/pickle/src/object.rs crates/pickle/src/ser.rs crates/pickle/src/transfer.rs crates/pickle/src/workload.rs

crates/pickle/src/lib.rs:
crates/pickle/src/de.rs:
crates/pickle/src/error.rs:
crates/pickle/src/object.rs:
crates/pickle/src/ser.rs:
crates/pickle/src/transfer.rs:
crates/pickle/src/workload.rs:
