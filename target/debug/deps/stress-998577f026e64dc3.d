/root/repo/target/debug/deps/stress-998577f026e64dc3.d: tests/tests/stress.rs

/root/repo/target/debug/deps/stress-998577f026e64dc3: tests/tests/stress.rs

tests/tests/stress.rs:
