/root/repo/target/debug/deps/mpicd_ddtbench-3ffbbe7fd1a32316.d: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

/root/repo/target/debug/deps/libmpicd_ddtbench-3ffbbe7fd1a32316.rlib: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

/root/repo/target/debug/deps/libmpicd_ddtbench-3ffbbe7fd1a32316.rmeta: crates/ddtbench/src/lib.rs crates/ddtbench/src/custom.rs crates/ddtbench/src/lammps.rs crates/ddtbench/src/milc.rs crates/ddtbench/src/nas_lu.rs crates/ddtbench/src/nas_mg.rs crates/ddtbench/src/nestpat.rs crates/ddtbench/src/pattern.rs crates/ddtbench/src/wrf.rs

crates/ddtbench/src/lib.rs:
crates/ddtbench/src/custom.rs:
crates/ddtbench/src/lammps.rs:
crates/ddtbench/src/milc.rs:
crates/ddtbench/src/nas_lu.rs:
crates/ddtbench/src/nas_mg.rs:
crates/ddtbench/src/nestpat.rs:
crates/ddtbench/src/pattern.rs:
crates/ddtbench/src/wrf.rs:
