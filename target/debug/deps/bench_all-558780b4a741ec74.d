/root/repo/target/debug/deps/bench_all-558780b4a741ec74.d: crates/bench/src/bin/bench_all.rs

/root/repo/target/debug/deps/bench_all-558780b4a741ec74: crates/bench/src/bin/bench_all.rs

crates/bench/src/bin/bench_all.rs:
