/root/repo/target/debug/deps/fig10_ddtbench-da94c6dd256dc666.d: crates/bench/src/bin/fig10_ddtbench.rs

/root/repo/target/debug/deps/fig10_ddtbench-da94c6dd256dc666: crates/bench/src/bin/fig10_ddtbench.rs

crates/bench/src/bin/fig10_ddtbench.rs:
