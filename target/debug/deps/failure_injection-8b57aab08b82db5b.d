/root/repo/target/debug/deps/failure_injection-8b57aab08b82db5b.d: tests/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-8b57aab08b82db5b: tests/tests/failure_injection.rs

tests/tests/failure_injection.rs:
