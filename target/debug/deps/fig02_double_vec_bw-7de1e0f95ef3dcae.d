/root/repo/target/debug/deps/fig02_double_vec_bw-7de1e0f95ef3dcae.d: crates/bench/src/bin/fig02_double_vec_bw.rs

/root/repo/target/debug/deps/fig02_double_vec_bw-7de1e0f95ef3dcae: crates/bench/src/bin/fig02_double_vec_bw.rs

crates/bench/src/bin/fig02_double_vec_bw.rs:
