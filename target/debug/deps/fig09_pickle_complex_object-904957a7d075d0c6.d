/root/repo/target/debug/deps/fig09_pickle_complex_object-904957a7d075d0c6.d: crates/bench/src/bin/fig09_pickle_complex_object.rs

/root/repo/target/debug/deps/fig09_pickle_complex_object-904957a7d075d0c6: crates/bench/src/bin/fig09_pickle_complex_object.rs

crates/bench/src/bin/fig09_pickle_complex_object.rs:
