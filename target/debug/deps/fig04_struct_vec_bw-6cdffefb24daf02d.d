/root/repo/target/debug/deps/fig04_struct_vec_bw-6cdffefb24daf02d.d: crates/bench/src/bin/fig04_struct_vec_bw.rs

/root/repo/target/debug/deps/fig04_struct_vec_bw-6cdffefb24daf02d: crates/bench/src/bin/fig04_struct_vec_bw.rs

crates/bench/src/bin/fig04_struct_vec_bw.rs:
