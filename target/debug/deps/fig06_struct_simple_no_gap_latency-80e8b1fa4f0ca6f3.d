/root/repo/target/debug/deps/fig06_struct_simple_no_gap_latency-80e8b1fa4f0ca6f3.d: crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs

/root/repo/target/debug/deps/fig06_struct_simple_no_gap_latency-80e8b1fa4f0ca6f3: crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs

crates/bench/src/bin/fig06_struct_simple_no_gap_latency.rs:
