/root/repo/target/debug/deps/proptest_fabric-3ba0ada5a9f2feb3.d: tests/tests/proptest_fabric.rs

/root/repo/target/debug/deps/proptest_fabric-3ba0ada5a9f2feb3: tests/tests/proptest_fabric.rs

tests/tests/proptest_fabric.rs:
