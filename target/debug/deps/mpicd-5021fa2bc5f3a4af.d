/root/repo/target/debug/deps/mpicd-5021fa2bc5f3a4af.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/collective.rs crates/core/src/communicator.rs crates/core/src/containers.rs crates/core/src/datatype.rs crates/core/src/error.rs crates/core/src/exchange.rs crates/core/src/macros.rs crates/core/src/resumable.rs crates/core/src/types.rs crates/core/src/vecvec.rs

/root/repo/target/debug/deps/libmpicd-5021fa2bc5f3a4af.rlib: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/collective.rs crates/core/src/communicator.rs crates/core/src/containers.rs crates/core/src/datatype.rs crates/core/src/error.rs crates/core/src/exchange.rs crates/core/src/macros.rs crates/core/src/resumable.rs crates/core/src/types.rs crates/core/src/vecvec.rs

/root/repo/target/debug/deps/libmpicd-5021fa2bc5f3a4af.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/collective.rs crates/core/src/communicator.rs crates/core/src/containers.rs crates/core/src/datatype.rs crates/core/src/error.rs crates/core/src/exchange.rs crates/core/src/macros.rs crates/core/src/resumable.rs crates/core/src/types.rs crates/core/src/vecvec.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/collective.rs:
crates/core/src/communicator.rs:
crates/core/src/containers.rs:
crates/core/src/datatype.rs:
crates/core/src/error.rs:
crates/core/src/exchange.rs:
crates/core/src/macros.rs:
crates/core/src/resumable.rs:
crates/core/src/types.rs:
crates/core/src/vecvec.rs:
