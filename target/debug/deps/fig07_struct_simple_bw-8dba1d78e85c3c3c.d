/root/repo/target/debug/deps/fig07_struct_simple_bw-8dba1d78e85c3c3c.d: crates/bench/src/bin/fig07_struct_simple_bw.rs

/root/repo/target/debug/deps/fig07_struct_simple_bw-8dba1d78e85c3c3c: crates/bench/src/bin/fig07_struct_simple_bw.rs

crates/bench/src/bin/fig07_struct_simple_bw.rs:
