/root/repo/target/debug/deps/mpicd_datatype-f9c219504cc884e4.d: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

/root/repo/target/debug/deps/libmpicd_datatype-f9c219504cc884e4.rlib: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

/root/repo/target/debug/deps/libmpicd_datatype-f9c219504cc884e4.rmeta: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/committed.rs:
crates/datatype/src/engine.rs:
crates/datatype/src/equivalence.rs:
crates/datatype/src/error.rs:
crates/datatype/src/marshal.rs:
crates/datatype/src/primitive.rs:
crates/datatype/src/typ.rs:
