/root/repo/target/debug/deps/mpicd-cbfbe6109a3bd25b.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/collective.rs crates/core/src/communicator.rs crates/core/src/containers.rs crates/core/src/datatype.rs crates/core/src/error.rs crates/core/src/exchange.rs crates/core/src/macros.rs crates/core/src/resumable.rs crates/core/src/types.rs crates/core/src/vecvec.rs

/root/repo/target/debug/deps/libmpicd-cbfbe6109a3bd25b.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/collective.rs crates/core/src/communicator.rs crates/core/src/containers.rs crates/core/src/datatype.rs crates/core/src/error.rs crates/core/src/exchange.rs crates/core/src/macros.rs crates/core/src/resumable.rs crates/core/src/types.rs crates/core/src/vecvec.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/collective.rs:
crates/core/src/communicator.rs:
crates/core/src/containers.rs:
crates/core/src/datatype.rs:
crates/core/src/error.rs:
crates/core/src/exchange.rs:
crates/core/src/macros.rs:
crates/core/src/resumable.rs:
crates/core/src/types.rs:
crates/core/src/vecvec.rs:
