/root/repo/target/debug/deps/edge_cases-19f8ea38187ce1fe.d: tests/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-19f8ea38187ce1fe: tests/tests/edge_cases.rs

tests/tests/edge_cases.rs:
