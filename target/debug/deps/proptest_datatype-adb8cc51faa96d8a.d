/root/repo/target/debug/deps/proptest_datatype-adb8cc51faa96d8a.d: tests/tests/proptest_datatype.rs

/root/repo/target/debug/deps/proptest_datatype-adb8cc51faa96d8a: tests/tests/proptest_datatype.rs

tests/tests/proptest_datatype.rs:
