/root/repo/target/debug/deps/mpicd_capi-78756a6ef88dd0e9.d: crates/capi/src/lib.rs crates/capi/src/adapter.rs crates/capi/src/ctypes.rs crates/capi/src/datatype_c.rs crates/capi/src/handles.rs crates/capi/src/pt2pt.rs

/root/repo/target/debug/deps/libmpicd_capi-78756a6ef88dd0e9.rlib: crates/capi/src/lib.rs crates/capi/src/adapter.rs crates/capi/src/ctypes.rs crates/capi/src/datatype_c.rs crates/capi/src/handles.rs crates/capi/src/pt2pt.rs

/root/repo/target/debug/deps/libmpicd_capi-78756a6ef88dd0e9.rmeta: crates/capi/src/lib.rs crates/capi/src/adapter.rs crates/capi/src/ctypes.rs crates/capi/src/datatype_c.rs crates/capi/src/handles.rs crates/capi/src/pt2pt.rs

crates/capi/src/lib.rs:
crates/capi/src/adapter.rs:
crates/capi/src/ctypes.rs:
crates/capi/src/datatype_c.rs:
crates/capi/src/handles.rs:
crates/capi/src/pt2pt.rs:
