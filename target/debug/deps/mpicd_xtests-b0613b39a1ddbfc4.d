/root/repo/target/debug/deps/mpicd_xtests-b0613b39a1ddbfc4.d: tests/src/lib.rs

/root/repo/target/debug/deps/mpicd_xtests-b0613b39a1ddbfc4: tests/src/lib.rs

tests/src/lib.rs:
