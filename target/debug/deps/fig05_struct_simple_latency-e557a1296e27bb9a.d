/root/repo/target/debug/deps/fig05_struct_simple_latency-e557a1296e27bb9a.d: crates/bench/src/bin/fig05_struct_simple_latency.rs

/root/repo/target/debug/deps/fig05_struct_simple_latency-e557a1296e27bb9a: crates/bench/src/bin/fig05_struct_simple_latency.rs

crates/bench/src/bin/fig05_struct_simple_latency.rs:
