/root/repo/target/debug/deps/fig03_struct_vec_latency-d4dc9be7c566ed46.d: crates/bench/src/bin/fig03_struct_vec_latency.rs

/root/repo/target/debug/deps/fig03_struct_vec_latency-d4dc9be7c566ed46: crates/bench/src/bin/fig03_struct_vec_latency.rs

crates/bench/src/bin/fig03_struct_vec_latency.rs:
