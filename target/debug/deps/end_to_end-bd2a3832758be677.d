/root/repo/target/debug/deps/end_to_end-bd2a3832758be677.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-bd2a3832758be677: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
