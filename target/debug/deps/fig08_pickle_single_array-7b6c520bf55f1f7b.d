/root/repo/target/debug/deps/fig08_pickle_single_array-7b6c520bf55f1f7b.d: crates/bench/src/bin/fig08_pickle_single_array.rs

/root/repo/target/debug/deps/fig08_pickle_single_array-7b6c520bf55f1f7b: crates/bench/src/bin/fig08_pickle_single_array.rs

crates/bench/src/bin/fig08_pickle_single_array.rs:
