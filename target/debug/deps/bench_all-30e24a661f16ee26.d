/root/repo/target/debug/deps/bench_all-30e24a661f16ee26.d: crates/bench/src/bin/bench_all.rs

/root/repo/target/debug/deps/bench_all-30e24a661f16ee26: crates/bench/src/bin/bench_all.rs

crates/bench/src/bin/bench_all.rs:
