/root/repo/target/debug/deps/mpicd_xtests-b1425ae6ae9600be.d: tests/src/lib.rs

/root/repo/target/debug/deps/libmpicd_xtests-b1425ae6ae9600be.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libmpicd_xtests-b1425ae6ae9600be.rmeta: tests/src/lib.rs

tests/src/lib.rs:
