/root/repo/target/debug/deps/disabled-4ea3e9a2221e0692.d: crates/obs/tests/disabled.rs

/root/repo/target/debug/deps/disabled-4ea3e9a2221e0692: crates/obs/tests/disabled.rs

crates/obs/tests/disabled.rs:
