/root/repo/target/debug/deps/obs_trace-130b763f4c9b930b.d: crates/fabric/tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-130b763f4c9b930b: crates/fabric/tests/obs_trace.rs

crates/fabric/tests/obs_trace.rs:
