/root/repo/target/debug/deps/fig05_struct_simple_latency-99771a56e6807d01.d: crates/bench/src/bin/fig05_struct_simple_latency.rs

/root/repo/target/debug/deps/fig05_struct_simple_latency-99771a56e6807d01: crates/bench/src/bin/fig05_struct_simple_latency.rs

crates/bench/src/bin/fig05_struct_simple_latency.rs:
