/root/repo/target/debug/deps/table1_characteristics-62fab8f94747bd03.d: crates/bench/src/bin/table1_characteristics.rs

/root/repo/target/debug/deps/table1_characteristics-62fab8f94747bd03: crates/bench/src/bin/table1_characteristics.rs

crates/bench/src/bin/table1_characteristics.rs:
