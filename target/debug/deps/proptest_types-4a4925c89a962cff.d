/root/repo/target/debug/deps/proptest_types-4a4925c89a962cff.d: tests/tests/proptest_types.rs

/root/repo/target/debug/deps/proptest_types-4a4925c89a962cff: tests/tests/proptest_types.rs

tests/tests/proptest_types.rs:
