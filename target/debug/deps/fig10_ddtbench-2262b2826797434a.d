/root/repo/target/debug/deps/fig10_ddtbench-2262b2826797434a.d: crates/bench/src/bin/fig10_ddtbench.rs

/root/repo/target/debug/deps/fig10_ddtbench-2262b2826797434a: crates/bench/src/bin/fig10_ddtbench.rs

crates/bench/src/bin/fig10_ddtbench.rs:
