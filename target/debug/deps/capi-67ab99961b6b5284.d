/root/repo/target/debug/deps/capi-67ab99961b6b5284.d: crates/capi/tests/capi.rs

/root/repo/target/debug/deps/capi-67ab99961b6b5284: crates/capi/tests/capi.rs

crates/capi/tests/capi.rs:
