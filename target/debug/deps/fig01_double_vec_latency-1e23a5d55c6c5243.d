/root/repo/target/debug/deps/fig01_double_vec_latency-1e23a5d55c6c5243.d: crates/bench/src/bin/fig01_double_vec_latency.rs

/root/repo/target/debug/deps/fig01_double_vec_latency-1e23a5d55c6c5243: crates/bench/src/bin/fig01_double_vec_latency.rs

crates/bench/src/bin/fig01_double_vec_latency.rs:
