/root/repo/target/debug/deps/fabric_integration-dc5dbf34d5fd4b84.d: crates/fabric/tests/fabric_integration.rs

/root/repo/target/debug/deps/fabric_integration-dc5dbf34d5fd4b84: crates/fabric/tests/fabric_integration.rs

crates/fabric/tests/fabric_integration.rs:
