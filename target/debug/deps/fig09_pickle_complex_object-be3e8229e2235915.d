/root/repo/target/debug/deps/fig09_pickle_complex_object-be3e8229e2235915.d: crates/bench/src/bin/fig09_pickle_complex_object.rs

/root/repo/target/debug/deps/fig09_pickle_complex_object-be3e8229e2235915: crates/bench/src/bin/fig09_pickle_complex_object.rs

crates/bench/src/bin/fig09_pickle_complex_object.rs:
