/root/repo/target/debug/deps/fig08_pickle_single_array-2b096c574037f3b1.d: crates/bench/src/bin/fig08_pickle_single_array.rs

/root/repo/target/debug/deps/fig08_pickle_single_array-2b096c574037f3b1: crates/bench/src/bin/fig08_pickle_single_array.rs

crates/bench/src/bin/fig08_pickle_single_array.rs:
