/root/repo/target/debug/deps/ablation_wire_model-eda2e1da46c7ec30.d: crates/bench/src/bin/ablation_wire_model.rs

/root/repo/target/debug/deps/ablation_wire_model-eda2e1da46c7ec30: crates/bench/src/bin/ablation_wire_model.rs

crates/bench/src/bin/ablation_wire_model.rs:
