/root/repo/target/debug/deps/fig03_struct_vec_latency-ee9152d14f592a95.d: crates/bench/src/bin/fig03_struct_vec_latency.rs

/root/repo/target/debug/deps/fig03_struct_vec_latency-ee9152d14f592a95: crates/bench/src/bin/fig03_struct_vec_latency.rs

crates/bench/src/bin/fig03_struct_vec_latency.rs:
