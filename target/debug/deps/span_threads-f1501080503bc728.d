/root/repo/target/debug/deps/span_threads-f1501080503bc728.d: crates/obs/tests/span_threads.rs

/root/repo/target/debug/deps/span_threads-f1501080503bc728: crates/obs/tests/span_threads.rs

crates/obs/tests/span_threads.rs:
