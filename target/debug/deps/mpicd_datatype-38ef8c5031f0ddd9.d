/root/repo/target/debug/deps/mpicd_datatype-38ef8c5031f0ddd9.d: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

/root/repo/target/debug/deps/libmpicd_datatype-38ef8c5031f0ddd9.rmeta: crates/datatype/src/lib.rs crates/datatype/src/committed.rs crates/datatype/src/engine.rs crates/datatype/src/equivalence.rs crates/datatype/src/error.rs crates/datatype/src/marshal.rs crates/datatype/src/primitive.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/committed.rs:
crates/datatype/src/engine.rs:
crates/datatype/src/equivalence.rs:
crates/datatype/src/error.rs:
crates/datatype/src/marshal.rs:
crates/datatype/src/primitive.rs:
crates/datatype/src/typ.rs:
