/root/repo/target/debug/deps/fig07_struct_simple_bw-834c8c387ef62579.d: crates/bench/src/bin/fig07_struct_simple_bw.rs

/root/repo/target/debug/deps/fig07_struct_simple_bw-834c8c387ef62579: crates/bench/src/bin/fig07_struct_simple_bw.rs

crates/bench/src/bin/fig07_struct_simple_bw.rs:
