/root/repo/target/debug/deps/mpicd_obs-6fa019729347681e.d: crates/obs/src/lib.rs crates/obs/src/config.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sync.rs crates/obs/src/time.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libmpicd_obs-6fa019729347681e.rlib: crates/obs/src/lib.rs crates/obs/src/config.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sync.rs crates/obs/src/time.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libmpicd_obs-6fa019729347681e.rmeta: crates/obs/src/lib.rs crates/obs/src/config.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/rng.rs crates/obs/src/sync.rs crates/obs/src/time.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/config.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/rng.rs:
crates/obs/src/sync.rs:
crates/obs/src/time.rs:
crates/obs/src/trace.rs:
