/root/repo/target/debug/deps/mpicd_bench-336b5420df6da0fb.d: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/mpicd_bench-336b5420df6da0fb: crates/bench/src/lib.rs crates/bench/src/ddt.rs crates/bench/src/harness.rs crates/bench/src/methods.rs crates/bench/src/phase.rs crates/bench/src/pickle_run.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ddt.rs:
crates/bench/src/harness.rs:
crates/bench/src/methods.rs:
crates/bench/src/phase.rs:
crates/bench/src/pickle_run.rs:
crates/bench/src/report.rs:
