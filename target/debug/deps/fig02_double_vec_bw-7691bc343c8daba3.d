/root/repo/target/debug/deps/fig02_double_vec_bw-7691bc343c8daba3.d: crates/bench/src/bin/fig02_double_vec_bw.rs

/root/repo/target/debug/deps/fig02_double_vec_bw-7691bc343c8daba3: crates/bench/src/bin/fig02_double_vec_bw.rs

crates/bench/src/bin/fig02_double_vec_bw.rs:
