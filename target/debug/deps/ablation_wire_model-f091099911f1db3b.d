/root/repo/target/debug/deps/ablation_wire_model-f091099911f1db3b.d: crates/bench/src/bin/ablation_wire_model.rs

/root/repo/target/debug/deps/ablation_wire_model-f091099911f1db3b: crates/bench/src/bin/ablation_wire_model.rs

crates/bench/src/bin/ablation_wire_model.rs:
