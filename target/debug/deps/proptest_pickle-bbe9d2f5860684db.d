/root/repo/target/debug/deps/proptest_pickle-bbe9d2f5860684db.d: tests/tests/proptest_pickle.rs

/root/repo/target/debug/deps/proptest_pickle-bbe9d2f5860684db: tests/tests/proptest_pickle.rs

tests/tests/proptest_pickle.rs:
