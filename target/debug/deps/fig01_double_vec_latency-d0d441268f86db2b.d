/root/repo/target/debug/deps/fig01_double_vec_latency-d0d441268f86db2b.d: crates/bench/src/bin/fig01_double_vec_latency.rs

/root/repo/target/debug/deps/fig01_double_vec_latency-d0d441268f86db2b: crates/bench/src/bin/fig01_double_vec_latency.rs

crates/bench/src/bin/fig01_double_vec_latency.rs:
