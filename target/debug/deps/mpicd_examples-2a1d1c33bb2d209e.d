/root/repo/target/debug/deps/mpicd_examples-2a1d1c33bb2d209e.d: examples/lib.rs

/root/repo/target/debug/deps/mpicd_examples-2a1d1c33bb2d209e: examples/lib.rs

examples/lib.rs:
