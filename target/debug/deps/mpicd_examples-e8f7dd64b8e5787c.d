/root/repo/target/debug/deps/mpicd_examples-e8f7dd64b8e5787c.d: examples/lib.rs

/root/repo/target/debug/deps/libmpicd_examples-e8f7dd64b8e5787c.rlib: examples/lib.rs

/root/repo/target/debug/deps/libmpicd_examples-e8f7dd64b8e5787c.rmeta: examples/lib.rs

examples/lib.rs:
