//! A 1-D stencil (heat equation) with halo exchange — the generated-macro
//! plus collectives tour: `custom_struct!` declares the halo record,
//! `sendrecv` swaps halos around the ring deadlock-free, and `allreduce`
//! computes the global residual each step.
//!
//! ```text
//! cargo run --release -p mpicd-examples --example stencil_halo
//! ```

use mpicd::collective::{allreduce_f64, bcast, ReduceOp};
use mpicd::World;

mpicd::custom_struct! {
    /// One rank's outgoing halo: a step stamp packed in-band, the boundary
    /// cells as a zero-copy region.
    pub struct Halo {
        scalars { step: u64 }
        regions { cells: Vec<f64> }
    }
}

const RANKS: usize = 4;
const CELLS: usize = 1 << 12; // per rank
const GHOST: usize = 1;
const STEPS: u64 = 200;

fn main() {
    let world = World::new(RANKS);
    let comms = world.comms();

    let residuals: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                s.spawn(move || {
                    let me = comm.rank();
                    let right = (me + 1) % RANKS;
                    let left = (me + RANKS - 1) % RANKS;

                    // Initial condition, broadcast from rank 0 so everyone
                    // agrees on the global parameters.
                    let mut params = vec![0.0f64; 2]; // [diffusivity, dt]
                    if me == 0 {
                        params = vec![0.1, 0.4];
                    }
                    bcast(comm, &mut params, 0).expect("bcast params");
                    let (alpha, dt) = (params[0], params[1]);

                    // Local field with ghost cells at each end; a hot spot
                    // on rank 1.
                    let mut u = vec![0.0f64; CELLS + 2 * GHOST];
                    if me == 1 {
                        for (i, v) in u.iter_mut().enumerate() {
                            *v = (i as f64 / CELLS as f64 * std::f64::consts::PI).sin() * 100.0;
                        }
                    }

                    let mut residual = f64::INFINITY;
                    for step in 0..STEPS {
                        // Exchange halos: my right edge ↔ right neighbor's
                        // left ghost, simultaneously both directions.
                        let send_right = Halo {
                            step,
                            cells: u[CELLS..CELLS + GHOST].to_vec(),
                        };
                        let mut recv_left = Halo {
                            step: 0,
                            cells: vec![0.0; GHOST],
                        };
                        comm.sendrecv(&send_right, right, 1, &mut recv_left, left as i32, 1)
                            .expect("halo right");
                        assert_eq!(recv_left.step, step, "halo from the same step");
                        u[..GHOST].copy_from_slice(&recv_left.cells);

                        let send_left = Halo {
                            step,
                            cells: u[GHOST..2 * GHOST].to_vec(),
                        };
                        let mut recv_right = Halo {
                            step: 0,
                            cells: vec![0.0; GHOST],
                        };
                        comm.sendrecv(&send_left, left, 2, &mut recv_right, right as i32, 2)
                            .expect("halo left");
                        u[CELLS + GHOST..].copy_from_slice(&recv_right.cells);

                        // Explicit Euler step.
                        let mut next = u.clone();
                        let mut local_delta: f64 = 0.0;
                        for i in GHOST..CELLS + GHOST {
                            let lap = u[i - 1] - 2.0 * u[i] + u[i + 1];
                            next[i] = u[i] + alpha * dt * lap;
                            local_delta += (next[i] - u[i]).abs();
                        }
                        u = next;

                        // Global residual via allreduce.
                        let mut acc = [local_delta];
                        allreduce_f64(comm, &mut acc, ReduceOp::Sum).expect("allreduce");
                        residual = acc[0];
                    }
                    (me, residual, u.iter().sum::<f64>())
                })
            })
            .collect();

        handles
            .into_iter()
            .map(|h| {
                let (rank, residual, mass) = h.join().expect("rank thread");
                println!("[rank {rank}] final residual {residual:.6}, local mass {mass:.3}");
                residual
            })
            .collect()
    });

    // Every rank computed the same global residual, and diffusion shrank it.
    assert!(residuals.windows(2).all(|w| w[0] == w[1]));
    assert!(residuals[0].is_finite() && residuals[0] < 100.0);

    let stats = world.fabric().stats();
    println!(
        "\n{} steps × {} ranks: {} messages, {} KiB on the wire — halos as \
         single custom-datatype messages throughout",
        STEPS,
        RANKS,
        stats.messages,
        stats.bytes / 1024
    );
}
