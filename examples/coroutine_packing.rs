//! Resumable nested-loop packing — the Rust equivalent of the paper's C++
//! coroutine experiment (Listing 9).
//!
//! The pack callback receives bounded fragment buffers and must suspend in
//! the middle of a loop nest, then resume exactly where it stopped. The
//! paper does this with `std::generator`; here [`mpicd::LoopNest`]'s
//! [`SuspendableCursor`](mpicd::resumable::SuspendableCursor) carries the
//! live loop indices across calls.
//!
//! ```text
//! cargo run --release -p mpicd-examples --example coroutine_packing
//! ```

use mpicd::LoopNest;

fn main() {
    // The NAS_LU_y-flavoured nest from Listing 9: DIM3-1 × DIM1 runs of one
    // double, strided across a plane.
    const DIM1: usize = 6;
    const DIM3: usize = 4;
    let nest = LoopNest::new(
        vec![DIM3 - 1, DIM1],
        vec![(DIM1 * 16) as isize, 16], // every other double
        8,
    )
    .expect("valid nest");

    let span = nest.span().1 as usize;
    let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
    println!(
        "nest: {} runs × {} B = {} packed bytes (over a {} B slab)",
        nest.total_runs(),
        nest.run_len(),
        nest.packed_size(),
        span
    );

    // Drive the suspendable cursor with deliberately awkward fragment
    // sizes; print the loop indices at every suspension point, like the
    // `co_yield` in the paper's Listing 9.
    let mut cursor = nest.cursor();
    let mut packed = Vec::new();
    let frags = [5usize, 13, 7, 64, 3];
    let mut frag_iter = frags.iter().cycle();
    let mut call = 0;
    while !cursor.is_finished() {
        let cap = *frag_iter.next().unwrap();
        let mut buf = vec![0u8; cap];
        // SAFETY: slab sized to the nest's span above.
        let n = unsafe { cursor.pack_into(src.as_ptr(), &mut buf) };
        packed.extend_from_slice(&buf[..n]);
        call += 1;
        println!(
            "pack call {call:>2}: fragment of {cap:>2} B, wrote {n:>2} B, suspended at indices {:?}",
            cursor.indices()
        );
    }

    // The offset-addressed API reproduces the same stream from any offset —
    // no coroutine state needed, by mixed-radix index recovery.
    let reference = nest.pack_slice(&src).expect("bounds checked");
    assert_eq!(packed, reference);
    println!(
        "\nsuspendable cursor and offset-addressed packing agree ({} bytes)",
        packed.len()
    );

    // Unpacking side: scatter the stream back through a fresh cursor.
    let mut dst = vec![0u8; span];
    let mut un = nest.cursor();
    // SAFETY: dst sized to the span.
    unsafe { un.unpack_from(dst.as_mut_ptr(), &packed) };
    assert_eq!(nest.pack_slice(&dst).expect("bounds"), reference);
    println!("unpack cursor reconstructed every strided run — roundtrip OK");
}
