//! Examples for the mpicd custom-datatype-serialization workspace.
//!
//! Run any of them with, e.g.:
//!
//! ```text
//! cargo run --release -p mpicd-examples --example quickstart
//! cargo run --release -p mpicd-examples --example particle_exchange
//! cargo run --release -p mpicd-examples --example python_objects
//! cargo run --release -p mpicd-examples --example capi_demo
//! cargo run --release -p mpicd-examples --example coroutine_packing
//! ```
