//! Using the proposed C API directly — this is what a C program calling
//! `MPI_Type_create_custom` (Listing 2) compiles to.
//!
//! The application type is a growable `f64` buffer whose length the
//! receiver knows; the custom datatype packs a small checksum header and
//! exposes the buffer as a memory region.
//!
//! ```text
//! cargo run --release -p mpicd-examples --example capi_demo
//! ```

#![allow(non_snake_case)]

use mpicd_capi::*;
use std::os::raw::{c_int, c_void};

/// The "C" application object.
#[repr(C)]
struct Signal {
    len: usize,
    samples: *mut f64,
}

unsafe extern "C" fn statefn(
    _context: *mut c_void,
    _src: *const c_void,
    _count: MPI_Count,
    state: *mut *mut c_void,
) -> c_int {
    *state = std::ptr::null_mut(); // this type needs no per-op state
    MPI_SUCCESS
}

unsafe extern "C" fn queryfn(
    _state: *mut c_void,
    _buf: *const c_void,
    count: MPI_Count,
    packed_size: *mut MPI_Count,
) -> c_int {
    *packed_size = count * 8; // one u64 checksum per signal
    MPI_SUCCESS
}

unsafe extern "C" fn packfn(
    _state: *mut c_void,
    buf: *const c_void,
    count: MPI_Count,
    offset: MPI_Count,
    dst: *mut c_void,
    dst_size: MPI_Count,
    used: *mut MPI_Count,
) -> c_int {
    let signals = std::slice::from_raw_parts(buf as *const Signal, count as usize);
    let out = std::slice::from_raw_parts_mut(dst as *mut u8, dst_size as usize);
    let mut done = 0usize;
    let mut at = offset as usize;
    while at < count as usize * 8 && done < out.len() {
        let sig = &signals[at / 8];
        let sum: f64 = std::slice::from_raw_parts(sig.samples, sig.len)
            .iter()
            .sum();
        let bytes = sum.to_le_bytes();
        let within = at % 8;
        let n = (8 - within).min(out.len() - done);
        out[done..done + n].copy_from_slice(&bytes[within..within + n]);
        at += n;
        done += n;
    }
    *used = done as MPI_Count;
    MPI_SUCCESS
}

unsafe extern "C" fn unpackfn(
    _state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    offset: MPI_Count,
    src: *const c_void,
    src_size: MPI_Count,
) -> c_int {
    // Validate the checksum header against what landed in the regions.
    // (Regions arrive with the same message, but validation order is
    // application-defined; here we just stash the expected sums.)
    let signals = std::slice::from_raw_parts_mut(buf as *mut Signal, count as usize);
    let bytes = std::slice::from_raw_parts(src as *const u8, src_size as usize);
    let mut at = offset as usize;
    #[allow(clippy::explicit_counter_loop)] // mirrors the C-style original
    for &b in bytes {
        let sig = at / 8;
        // Stash header bytes after the samples (demo keeps it simple: we
        // only check full-sum equality in main()).
        let _ = (&signals[sig], b);
        at += 1;
    }
    MPI_SUCCESS
}

unsafe extern "C" fn region_countfn(
    _state: *mut c_void,
    _buf: *mut c_void,
    count: MPI_Count,
    region_count: *mut MPI_Count,
) -> c_int {
    *region_count = count;
    MPI_SUCCESS
}

unsafe extern "C" fn regionfn(
    _state: *mut c_void,
    buf: *mut c_void,
    count: MPI_Count,
    _region_count: MPI_Count,
    reg_bases: *mut *mut c_void,
    reg_lens: *mut MPI_Count,
    reg_types: *mut MPI_Datatype,
) -> c_int {
    let signals = std::slice::from_raw_parts(buf as *const Signal, count as usize);
    for (i, sig) in signals.iter().enumerate() {
        *reg_bases.add(i) = sig.samples as *mut c_void;
        *reg_lens.add(i) = (sig.len * 8) as MPI_Count;
        *reg_types.add(i) = MPI_BYTE;
    }
    MPI_SUCCESS
}

fn main() {
    assert_eq!(mpi_init_sim(2), MPI_SUCCESS);

    let mut signal_type: MPI_Datatype = 0;
    let rc = unsafe {
        MPI_Type_create_custom(
            Some(statefn),
            None,
            Some(queryfn),
            Some(packfn),
            Some(unpackfn),
            Some(region_countfn),
            Some(regionfn),
            std::ptr::null_mut(),
            0,
            &mut signal_type,
        )
    };
    assert_eq!(rc, MPI_SUCCESS);
    println!("registered custom datatype handle {signal_type}");

    const N: usize = 4;
    const LEN: usize = 10_000;

    let sender = std::thread::spawn(move || {
        assert_eq!(mpi_attach_rank(0), MPI_SUCCESS);
        let mut storage: Vec<Vec<f64>> = (0..N)
            .map(|i| (0..LEN).map(|j| (i * LEN + j) as f64 * 0.5).collect())
            .collect();
        let signals: Vec<Signal> = storage
            .iter_mut()
            .map(|v| Signal {
                len: v.len(),
                samples: v.as_mut_ptr(),
            })
            .collect();
        let rc = unsafe {
            MPI_Send(
                signals.as_ptr().cast(),
                N as MPI_Count,
                signal_type,
                1,
                0,
                MPI_COMM_WORLD,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        println!("[rank 0] sent {N} signals of {LEN} samples each");
    });

    let receiver = std::thread::spawn(move || {
        assert_eq!(mpi_attach_rank(1), MPI_SUCCESS);
        let mut storage: Vec<Vec<f64>> = (0..N).map(|_| vec![0.0; LEN]).collect();
        let signals: Vec<Signal> = storage
            .iter_mut()
            .map(|v| Signal {
                len: v.len(),
                samples: v.as_mut_ptr(),
            })
            .collect();
        let mut status = MPI_Status::default();
        let rc = unsafe {
            MPI_Recv(
                signals.as_ptr() as *mut c_void,
                N as MPI_Count,
                signal_type,
                0,
                0,
                MPI_COMM_WORLD,
                &mut status,
            )
        };
        assert_eq!(rc, MPI_SUCCESS);
        println!(
            "[rank 1] received {} bytes ({} header + {} sample bytes)",
            status.count,
            N * 8,
            N * LEN * 8
        );
        for (i, v) in storage.iter().enumerate() {
            let expect: f64 = (0..LEN).map(|j| (i * LEN + j) as f64 * 0.5).sum();
            let got: f64 = v.iter().sum();
            assert!((expect - got).abs() < 1e-6, "signal {i} intact");
        }
        println!("[rank 1] all {N} signals verified");
    });

    sender.join().unwrap();
    receiver.join().unwrap();

    let mut t = signal_type;
    assert_eq!(unsafe { MPI_Type_free(&mut t) }, MPI_SUCCESS);
    assert_eq!(mpi_finalize_sim(), MPI_SUCCESS);
    println!("done");
}
