//! A molecular-dynamics-style halo exchange (the workload class the
//! paper's intro motivates): each rank owns particles in
//! structure-of-arrays layout plus per-particle neighbor lists of varying
//! length — a dynamic type no derived datatype can express.
//!
//! This example implements `CustomPack`/`CustomUnpack` by hand, showing
//! the full callback surface: a packed header (counts + scalar charge
//! values), memory regions for the large coordinate arrays, and
//! receive-side validation in `finish()`.
//!
//! ```text
//! cargo run --release -p mpicd-examples --example particle_exchange
//! ```

use mpicd::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use mpicd::{Error, Result, World};

/// Structure-of-arrays particle block, as an MD code would keep it.
#[derive(Debug, Clone, PartialEq, Default)]
struct ParticleBlock {
    /// Positions, 3 × n.
    pos: Vec<f64>,
    /// Velocities, 3 × n.
    vel: Vec<f64>,
    /// Charges, n (packed in-band: they interleave poorly).
    charge: Vec<f64>,
}

impl ParticleBlock {
    fn generate(n: usize, seed: u64) -> Self {
        let f = |i: usize, k: u64| (seed.wrapping_mul(k) as f64).sin() + i as f64 * 0.01;
        Self {
            pos: (0..3 * n).map(|i| f(i, 3)).collect(),
            vel: (0..3 * n).map(|i| f(i, 5)).collect(),
            charge: (0..n).map(|i| f(i, 7)).collect(),
        }
    }

    fn len(&self) -> usize {
        self.charge.len()
    }
}

/// Send context: header = [count: u64][charges…]; regions = pos, vel.
struct BlockPack<'a> {
    header: Vec<u8>,
    block: &'a ParticleBlock,
}

impl<'a> BlockPack<'a> {
    fn new(block: &'a ParticleBlock) -> Self {
        let mut header = Vec::with_capacity(8 + 8 * block.len());
        header.extend_from_slice(&(block.len() as u64).to_le_bytes());
        for c in &block.charge {
            header.extend_from_slice(&c.to_le_bytes());
        }
        Self { header, block }
    }
}

impl CustomPack for BlockPack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.header.len())
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        let n = dst.len().min(self.header.len() - offset);
        dst[..n].copy_from_slice(&self.header[offset..offset + n]);
        Ok(n)
    }

    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(vec![
            SendRegion::from_typed(&self.block.pos),
            SendRegion::from_typed(&self.block.vel),
        ])
    }

    fn inorder(&self) -> bool {
        false
    }
}

/// Receive context: scatter header into count+charges, regions into the
/// preallocated coordinate arrays, then validate.
struct BlockUnpack<'a> {
    header: Vec<u8>,
    block: &'a mut ParticleBlock,
}

impl<'a> BlockUnpack<'a> {
    fn new(block: &'a mut ParticleBlock) -> Self {
        let n = block.len();
        Self {
            header: vec![0u8; 8 + 8 * n],
            block,
        }
    }
}

impl CustomUnpack for BlockUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.header.len())
    }

    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        if offset + src.len() > self.header.len() {
            return Err(Error::InvalidHeader("particle header overflow"));
        }
        self.header[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        Ok(vec![
            RecvRegion::from_typed(self.block.pos.as_mut_slice()),
            RecvRegion::from_typed(self.block.vel.as_mut_slice()),
        ])
    }

    fn finish(&mut self) -> Result<()> {
        let n = u64::from_le_bytes(self.header[..8].try_into().unwrap()) as usize;
        if n != self.block.len() {
            return Err(Error::LengthMismatch {
                expected: self.block.len(),
                got: n,
            });
        }
        for (i, c) in self.block.charge.iter_mut().enumerate() {
            let at = 8 + 8 * i;
            *c = f64::from_le_bytes(self.header[at..at + 8].try_into().unwrap());
        }
        Ok(())
    }
}

fn main() {
    const RANKS: usize = 4;
    const HALO: usize = 2048; // particles exchanged with each neighbor

    let world = World::new(RANKS);
    let comms = world.comms();

    // Ring halo exchange: everyone sends a particle block to the right
    // neighbor and receives one from the left, in a single MPI operation
    // per direction.
    std::thread::scope(|s| {
        for comm in &comms {
            s.spawn(move || {
                let me = comm.rank();
                let right = (me + 1) % RANKS;
                let left = (me + RANKS - 1) % RANKS;

                let outgoing = ParticleBlock::generate(HALO, me as u64 + 1);
                let mut incoming = ParticleBlock {
                    pos: vec![0.0; 3 * HALO],
                    vel: vec![0.0; 3 * HALO],
                    charge: vec![0.0; HALO],
                };

                // Even ranks send first, odd ranks receive first (classic
                // deadlock-free ring ordering with blocking calls).
                if me % 2 == 0 {
                    comm.send_custom(Box::new(BlockPack::new(&outgoing)), right, 0)
                        .expect("halo send");
                    let mut ctx = BlockUnpack::new(&mut incoming);
                    comm.recv_custom(&mut ctx, left as i32, 0)
                        .expect("halo recv");
                } else {
                    let mut ctx = BlockUnpack::new(&mut incoming);
                    comm.recv_custom(&mut ctx, left as i32, 0)
                        .expect("halo recv");
                    comm.send_custom(Box::new(BlockPack::new(&outgoing)), right, 0)
                        .expect("halo send");
                }

                let expect = ParticleBlock::generate(HALO, left as u64 + 1);
                assert_eq!(incoming, expect, "rank {me}: halo from {left} intact");
                println!(
                    "[rank {me}] received {HALO} particles from rank {left}: \
                     charges packed in-band, {} KiB of coordinates as regions",
                    (incoming.pos.len() + incoming.vel.len()) * 8 / 1024
                );
            });
        }
    });

    let stats = world.fabric().stats();
    println!(
        "\nwire: {} messages total ({} regions) — one per halo direction, \
         no extra length/metadata messages",
        stats.messages, stats.regions
    );
    assert_eq!(stats.messages, RANKS as u64);
}
