//! Quickstart: send a dynamic `Vec<Vec<i32>>` — a type classic MPI derived
//! datatypes cannot describe at all — in ONE message using the custom
//! datatype API.
//!
//! ```text
//! cargo run --release -p mpicd-examples --example quickstart
//! ```

use mpicd::World;

fn main() {
    // A two-rank world over the simulated 100 Gbps fabric.
    let world = World::new(2);
    let (rank0, rank1) = world.pair();

    // The paper's "double-vec" type: every subvector is its own heap
    // allocation, so there is no fixed type map — but Vec<Vec<i32>>
    // implements mpicd's Buffer/BufferMut with custom serialization:
    // subvector lengths are packed in-band, the payloads travel as
    // zero-copy memory regions.
    let send: Vec<Vec<i32>> = vec![
        (0..1000).collect(),
        (0..50).map(|x| x * 2).collect(),
        vec![42; 4096],
    ];
    // The receive side preallocates matching shapes (receives must know
    // component lengths — paper §VI; see `python_objects` for the
    // dynamic-shape workaround).
    let mut recv: Vec<Vec<i32>> = send.iter().map(|v| vec![0; v.len()]).collect();

    std::thread::scope(|s| {
        s.spawn(|| {
            let st = rank0.send(&send, 1, 7).expect("send");
            println!("[rank 0] sent   {} bytes (tag {})", st.bytes, st.tag);
        });
        s.spawn(|| {
            let st = rank1.recv(&mut recv, 0, 7).expect("recv");
            println!(
                "[rank 1] received {} bytes from rank {}",
                st.bytes, st.source
            );
        });
    });

    assert_eq!(recv, send);
    let stats = world.fabric().stats();
    println!(
        "wire: {} message(s), {} scatter/gather regions, {} bytes total",
        stats.messages, stats.regions, stats.bytes
    );
    println!(
        "modeled wire time: {:.2} us over {} message(s)",
        world.fabric().ledger().total_ns() / 1000.0,
        world.fabric().ledger().messages()
    );
    println!("OK: three heap-allocated subvectors arrived in a single MPI message");
}
