//! The mpi4py scenario (§V-B): ship a complex Python-style object three
//! ways and compare what hits the wire.
//!
//! ```text
//! cargo run --release -p mpicd-examples --example python_objects
//! ```

use mpicd::World;
use mpicd_pickle::{
    dumps, dumps_oob, recv_pickle_basic, recv_pickle_oob, recv_pickle_oob_cdt, send_pickle_basic,
    send_pickle_oob, send_pickle_oob_cdt, workload,
};

fn main() {
    // A "SimulationState" dict holding eight 128-KiB NumPy-style arrays.
    let obj = workload::complex_object(1 << 20);
    println!(
        "object: {} arrays, {} KiB of buffers",
        obj.array_count(),
        obj.buffer_bytes() / 1024
    );
    let inband = dumps(&obj);
    let (stream, bufs) = dumps_oob(&obj);
    println!(
        "in-band pickle stream: {} KiB (buffers copied into the stream)",
        inband.len() / 1024
    );
    println!(
        "protocol-5 stream: {} bytes of headers + {} zero-copy buffers\n",
        stream.len(),
        bufs.len()
    );

    for strategy in ["pickle-basic", "pickle-oob", "pickle-oob-cdt"] {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let obj_clone = obj.clone();
        let got = std::thread::scope(|s| {
            s.spawn(move || match strategy {
                "pickle-basic" => send_pickle_basic(&c0, &obj_clone, 1, 0).expect("send"),
                "pickle-oob" => send_pickle_oob(&c0, &obj_clone, 1, 0).expect("send"),
                _ => send_pickle_oob_cdt(&c0, &obj_clone, 1, 0).expect("send"),
            });
            let r = s.spawn(move || match strategy {
                "pickle-basic" => recv_pickle_basic(&c1, 0, 0).expect("recv"),
                "pickle-oob" => recv_pickle_oob(&c1, 0, 0).expect("recv"),
                _ => recv_pickle_oob_cdt(&c1, 0, 0).expect("recv"),
            });
            r.join().expect("receiver thread")
        });
        assert_eq!(got, obj, "{strategy}: object reconstructed");
        let stats = world.fabric().stats();
        println!(
            "{strategy:<16} {:>3} MPI messages, {:>6} KiB on the wire, {:>3} regions",
            stats.messages,
            stats.bytes / 1024,
            stats.regions
        );
    }

    println!(
        "\npickle-oob-cdt folds all buffers into one custom-datatype message \
         (plus one lengths message) — the paper's single-'atomic'-operation goal"
    );
}
